"""Property-based tests (hypothesis) for core invariants.

Each property targets an invariant listed in DESIGN.md §6:
- refinement monotonicity (Proposition 3.1),
- per-PT-row coverage being fan-out-independent,
- metric bounds,
- hash join ≡ nested-loop join,
- engine-cached APT materialization ≡ direct materialization,
- aggregation partitioning,
- diversity score range,
- NDCG/Kendall metric identities.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pattern, PatternPredicate, QualityStats, dissimilarity
from repro.core.pattern import OP_EQ, OP_GE, OP_LE
from repro.db import ColumnType, Database, Relation, TableSchema
from repro.db.executor import hash_join
from repro.ml import kendall_tau_distance, ndcg

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
CATEGORIES = ("a", "b", "c")

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(CATEGORIES),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=60,
)


def columns_from_rows(rows):
    return {
        "cat": np.array([r[0] for r in rows], dtype=object),
        "num": np.array([r[1] for r in rows], dtype=np.int64),
        "grp": np.array([r[2] for r in rows], dtype=np.int64),
    }


predicate_strategy = st.one_of(
    st.builds(
        PatternPredicate,
        st.just("cat"),
        st.just(OP_EQ),
        st.sampled_from(CATEGORIES),
    ),
    st.builds(
        PatternPredicate,
        st.just("num"),
        st.sampled_from((OP_LE, OP_GE)),
        st.integers(min_value=0, max_value=20),
    ),
)


# ----------------------------------------------------------------------
# Pattern properties
# ----------------------------------------------------------------------
class TestPatternProperties:
    @given(rows=rows_strategy, pred=predicate_strategy, extra=predicate_strategy)
    @settings(max_examples=80, deadline=None)
    def test_refinement_shrinks_matches(self, rows, pred, extra):
        """Prop 3.1 core: Φ' ⊒ Φ ⇒ match(Φ') ⊆ match(Φ)."""
        columns = columns_from_rows(rows)
        base = Pattern([pred])
        try:
            refined = Pattern([pred, extra])
        except ValueError:
            return  # same (attribute, op) pair — not a refinement
        base_mask = base.match_mask(columns)
        refined_mask = refined.match_mask(columns)
        assert (refined_mask <= base_mask).all()

    @given(rows=rows_strategy, pred=predicate_strategy)
    @settings(max_examples=50, deadline=None)
    def test_empty_pattern_superset(self, rows, pred):
        columns = columns_from_rows(rows)
        assert (
            Pattern([pred]).match_mask(columns)
            <= Pattern().match_mask(columns)
        ).all()

    @given(
        preds=st.lists(predicate_strategy, min_size=1, max_size=3, unique=True)
    )
    @settings(max_examples=50, deadline=None)
    def test_pattern_hash_order_independent(self, preds):
        try:
            forward = Pattern(preds)
            backward = Pattern(list(reversed(preds)))
        except ValueError:
            return
        assert forward == backward
        assert hash(forward) == hash(backward)


# ----------------------------------------------------------------------
# Quality metric properties
# ----------------------------------------------------------------------
class TestQualityProperties:
    @given(
        tp=st.integers(0, 100),
        fp=st.integers(0, 100),
        fn=st.integers(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_metric_bounds(self, tp, fp, fn):
        stats = QualityStats(tp=tp, fp=fp, fn=fn)
        assert 0.0 <= stats.precision <= 1.0
        assert 0.0 <= stats.recall <= 1.0
        assert 0.0 <= stats.f_score <= 1.0
        assert (stats.f_score == 0.0) == (tp == 0)

    @given(
        tp=st.integers(1, 100),
        fp=st.integers(0, 100),
        fn=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_fscore_between_p_and_r(self, tp, fp, fn):
        stats = QualityStats(tp=tp, fp=fp, fn=fn)
        lo = min(stats.precision, stats.recall)
        hi = max(stats.precision, stats.recall)
        assert lo - 1e-12 <= stats.f_score <= hi + 1e-12

    @given(rows=rows_strategy, pred=predicate_strategy)
    @settings(max_examples=50, deadline=None)
    def test_coverage_fanout_independent(self, rows, pred):
        """Duplicating every row (fan-out 2) must not change per-PT-row
        coverage counts."""
        columns = columns_from_rows(rows)
        pt_ids = np.arange(len(rows))
        pattern = Pattern([pred])
        mask = pattern.match_mask(columns)
        covered_once = set(pt_ids[mask].tolist())

        doubled = {k: np.concatenate([v, v]) for k, v in columns.items()}
        doubled_ids = np.concatenate([pt_ids, pt_ids])
        mask2 = pattern.match_mask(doubled)
        covered_twice = set(doubled_ids[mask2].tolist())
        assert covered_once == covered_twice


# ----------------------------------------------------------------------
# Join properties
# ----------------------------------------------------------------------
class TestJoinProperties:
    @given(
        left_keys=st.lists(st.integers(0, 5), min_size=0, max_size=25),
        right_keys=st.lists(st.integers(0, 5), min_size=0, max_size=25),
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_join_equals_nested_loop(self, left_keys, right_keys):
        left = Relation.from_rows(
            TableSchema.build("l", {"l.k": ColumnType.INT}),
            [(k,) for k in left_keys],
        )
        right = Relation.from_rows(
            TableSchema.build("r", {"r.k": ColumnType.INT}),
            [(k,) for k in right_keys],
        )
        joined = hash_join(left, right, [("l.k", "r.k")])
        expected = sorted(
            (a, b) for a in left_keys for b in right_keys if a == b
        )
        actual = sorted(
            (row[0], row[1]) for row in joined.iter_rows()
        )
        assert actual == expected

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_counts_partition(self, rows):
        relation = Relation.from_rows(
            TableSchema.build(
                "t",
                {
                    "cat": ColumnType.TEXT,
                    "num": ColumnType.INT,
                    "grp": ColumnType.INT,
                },
            ),
            rows,
        )
        from repro.db.executor import _group_indices

        groups = _group_indices(relation, ["grp"])
        assert sum(len(v) for v in groups.values()) == len(rows)
        all_indices = sorted(
            i for v in groups.values() for i in v.tolist()
        )
        assert all_indices == list(range(len(rows)))


# ----------------------------------------------------------------------
# Engine materialization properties
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def _engine_fixture():
    """A tiny database, its join-graph pool, and direct-path APTs.

    The pool holds every enumerated join graph plus all one-edge
    extensions of the valid ones, so it contains deep shared prefixes.
    """
    from repro.core.apt import materialize_apt
    from repro.core.config import CajadeConfig
    from repro.core.enumeration import (
        enumerate_join_graphs,
        extend_join_graph,
    )
    from repro.core.schema_graph import SchemaGraph
    from repro.db.parser import parse_sql
    from repro.db.provenance import ProvenanceTable

    db = Database("prop")
    games = []
    for year, season in ((2012, "a"), (2015, "b")):
        for g in range(4):
            games.append(
                (year, g + 1, "GSW" if g % 2 else "LAL", season)
            )
    db.create_table(
        TableSchema.build(
            "game",
            {
                "year": ColumnType.INT,
                "gameno": ColumnType.INT,
                "winner": ColumnType.TEXT,
                "season": ColumnType.TEXT,
            },
            primary_key=("year", "gameno"),
        ),
        games,
    )
    db.create_table(
        TableSchema.build(
            "player",
            {"player_id": ColumnType.INT, "player_name": ColumnType.TEXT},
            primary_key=("player_id",),
        ),
        [(0, "Curry"), (1, "Green")],
    )
    pgs = [
        (pid, year, gameno, 10 * (pid + 1) + gameno)
        for (year, gameno, _, _) in games
        for pid in (0, 1)
    ]
    db.create_table(
        TableSchema.build(
            "player_game",
            {
                "player_id": ColumnType.INT,
                "year": ColumnType.INT,
                "gameno": ColumnType.INT,
                "pts": ColumnType.INT,
            },
            primary_key=("player_id", "year", "gameno"),
        ),
        pgs,
    )
    db.add_foreign_key(
        "player_game", ("year", "gameno"), "game", ("year", "gameno")
    )
    db.add_foreign_key(
        "player_game", ("player_id",), "player", ("player_id",)
    )

    query = parse_sql(
        "SELECT season, COUNT(*) AS n FROM game g GROUP BY season"
    )
    pt = ProvenanceTable.compute(query, db)
    sg = SchemaGraph.from_database(db)
    config = CajadeConfig(max_join_edges=2)
    pool = list(enumerate_join_graphs(sg, query, pt, db, config))
    for graph in list(pool):
        if graph.num_edges > 0:
            pool.extend(extend_join_graph(graph, sg, query))
    directs = [materialize_apt(g, pt, db) for g in pool]
    return db, pt, pool, directs


class TestEngineProperties:
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=1,
            max_size=15,
        ),
        cache_kb=st.sampled_from([0, 2, 64, 4096]),
    )
    @settings(max_examples=40, deadline=None)
    def test_engine_matches_direct_materialization(self, picks, cache_kb):
        """For arbitrary join-graph sets and cache budgets, the engine
        produces relations identical (schema, rows, ``__pt_row_id``) to
        direct ``materialize_apt``."""
        from repro.engine import MaterializationEngine

        db, pt, pool, directs = _engine_fixture()
        engine = MaterializationEngine(pt, db, cache_mb=cache_kb / 1024.0)
        for pick in picks:
            index = pick % len(pool)
            direct = directs[index]
            cached = engine.materialize(pool[index])
            assert (
                cached.relation.column_names
                == direct.relation.column_names
            )
            assert np.array_equal(
                cached.pt_row_ids, direct.pt_row_ids
            )
            for name in direct.relation.column_names:
                left = direct.relation.column(name)
                right = cached.relation.column(name)
                assert left.dtype == right.dtype
                if left.dtype.kind == "f":
                    assert np.array_equal(left, right, equal_nan=True)
                else:
                    assert np.array_equal(left, right)

    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_materialize_many_order_independent_of_schedule(self, picks):
        """Batch (trie-order) and one-by-one materialization agree."""
        from repro.engine import MaterializationEngine

        db, pt, pool, directs = _engine_fixture()
        graphs = [pool[p % len(pool)] for p in picks]
        batch = MaterializationEngine(pt, db).materialize_many(graphs)
        for pick, apt in zip(picks, batch):
            direct = directs[pick % len(pool)]
            assert apt.relation.column_names == direct.relation.column_names
            for name in direct.relation.column_names:
                left = direct.relation.column(name)
                right = apt.relation.column(name)
                assert left.dtype == right.dtype
                if left.dtype.kind == "f":
                    assert np.array_equal(left, right, equal_nan=True)
                else:
                    assert np.array_equal(left, right)


# ----------------------------------------------------------------------
# Diversity & ranking metric properties
# ----------------------------------------------------------------------
class TestScoreProperties:
    @given(
        a=st.lists(predicate_strategy, min_size=1, max_size=3, unique=True),
        b=st.lists(predicate_strategy, min_size=1, max_size=3, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_dissimilarity_range(self, a, b):
        try:
            phi, other = Pattern(a), Pattern(b)
        except ValueError:
            return
        assert -2.0 <= dissimilarity(phi, other) <= 1.0

    @given(
        items=st.lists(
            st.sampled_from("abcdef"), min_size=1, max_size=6, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_ndcg_self_is_one(self, items):
        relevance = {item: float(len(items) - i) for i, item in enumerate(items)}
        assert ndcg(items, relevance) == pytest.approx(1.0)

    @given(
        perm=st.permutations(list("abcde")),
    )
    @settings(max_examples=40, deadline=None)
    def test_kendall_identity_and_symmetry(self, perm):
        base = list("abcde")
        assert kendall_tau_distance(perm, perm) == 0
        assert kendall_tau_distance(base, perm) == kendall_tau_distance(
            perm, base
        )
        assert kendall_tau_distance(base, perm) <= 10  # n(n-1)/2
