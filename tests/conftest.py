"""Shared fixtures: a hand-built mini NBA database plus small generated
NBA/MIMIC instances (session-scoped — generation is the expensive part).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema_graph import SchemaGraph
from repro.db import ColumnType, Database, TableSchema


@pytest.fixture(scope="session")
def mini_db() -> Database:
    """A deterministic 3-table database mirroring the paper's Example 1.

    game(year, gameno PK, ...) — player(player_id PK) —
    player_game(player_id, year, gameno PK) with embedded signal:
    Curry scores ≥ 30 in 2015-16 wins and ≤ 22 in 2012-13.
    """
    db = Database("mini")
    games = []
    # 8 games per season; GSW wins 6 in 2015-16 and 3 in 2012-13.
    schedule = {
        "2012-13": ["GSW", "GSW", "GSW", "LAL", "LAL", "LAL", "LAL", "MIA"],
        "2015-16": ["GSW", "GSW", "GSW", "GSW", "GSW", "GSW", "LAL", "MIA"],
    }
    for si, (season, winners) in enumerate(sorted(schedule.items())):
        year = 2012 + si * 3
        for g, winner in enumerate(winners):
            home = "GSW" if g % 2 == 0 else "LAL"
            away = "MIA" if home == "GSW" else "GSW"
            games.append((year, g + 1, home, away, winner, season))
    db.create_table(
        TableSchema.build(
            "game",
            {
                "year": ColumnType.INT,
                "gameno": ColumnType.INT,
                "home": ColumnType.TEXT,
                "away": ColumnType.TEXT,
                "winner": ColumnType.TEXT,
                "season": ColumnType.TEXT,
            },
            primary_key=("year", "gameno"),
        ),
        games,
    )
    players = ["Curry", "Thompson", "Green"]
    db.create_table(
        TableSchema.build(
            "player",
            {"player_id": ColumnType.INT, "player_name": ColumnType.TEXT},
            primary_key=("player_id",),
        ),
        list(enumerate(players)),
    )
    pgs = []
    for (year, gameno, home, away, winner, season) in games:
        if "GSW" not in (home, away):
            continue
        for pid, name in enumerate(players):
            if name == "Curry":
                pts = 32 if season == "2015-16" else 20
            elif name == "Thompson":
                pts = 18
            else:
                pts = 8 if season == "2015-16" else 4
            pgs.append((pid, year, gameno, pts))
    db.create_table(
        TableSchema.build(
            "player_game",
            {
                "player_id": ColumnType.INT,
                "year": ColumnType.INT,
                "gameno": ColumnType.INT,
                "pts": ColumnType.INT,
            },
            primary_key=("player_id", "year", "gameno"),
        ),
        pgs,
    )
    db.add_foreign_key("player_game", ("year", "gameno"), "game", ("year", "gameno"))
    db.add_foreign_key("player_game", ("player_id",), "player", ("player_id",))
    return db


@pytest.fixture(scope="session")
def mini_schema_graph(mini_db) -> SchemaGraph:
    return SchemaGraph.from_database(mini_db)


GSW_WINS_SQL = (
    "SELECT winner AS team, season, COUNT(*) AS win FROM game g "
    "WHERE winner = 'GSW' GROUP BY winner, season"
)


@pytest.fixture(scope="session")
def nba_small():
    """A small generated NBA instance with its schema graph."""
    from repro.datasets import load_nba

    return load_nba(scale=0.12, seed=5)


@pytest.fixture(scope="session")
def mimic_small():
    """A small generated MIMIC instance with its schema graph."""
    from repro.datasets import load_mimic

    return load_mimic(scale=0.08, seed=5)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
