"""Unit tests for CajadeConfig."""

import pytest

from repro.core import CajadeConfig


class TestDefaults:
    def test_paper_table1_defaults(self):
        config = CajadeConfig()
        assert config.max_join_edges == 3
        assert config.num_selected_attrs == 3
        assert config.max_numeric_predicates == 3
        assert config.lca_sample_rate == 0.1
        assert config.f1_sample_rate == 0.3
        assert config.lca_sample_cap == 1000

    def test_with_overrides_copies(self):
        base = CajadeConfig()
        changed = base.with_overrides(top_k=5)
        assert changed.top_k == 5
        assert base.top_k == 10


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"top_k": 0},
            {"max_join_edges": -1},
            {"lca_sample_rate": 0.0},
            {"lca_sample_rate": 1.5},
            {"f1_sample_rate": 0.0},
            {"recall_threshold": -0.1},
            {"recall_threshold": 1.1},
            {"num_fragments": 0},
            {"num_selected_attrs": 0},
            {"workers": 0},
            {"workers": -2},
            {"apt_cache_mb": -1.0},
            {"apt_cache_mb": -0.001},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CajadeConfig(**kwargs)


class TestEngineKnobs:
    def test_defaults_to_serial(self):
        config = CajadeConfig()
        assert config.workers == 1
        assert config.apt_cache_mb == 256.0

    def test_zero_cache_allowed(self):
        assert CajadeConfig(apt_cache_mb=0.0).apt_cache_mb == 0.0

    def test_workers_override(self):
        assert CajadeConfig().with_overrides(workers=4).workers == 4


class TestSelectedAttrCount:
    def test_absolute_count(self):
        config = CajadeConfig(num_selected_attrs=3)
        assert config.selected_attr_count(10) == 3

    def test_capped_by_total(self):
        config = CajadeConfig(num_selected_attrs=5)
        assert config.selected_attr_count(2) == 2

    def test_fraction(self):
        config = CajadeConfig(num_selected_attrs=0.5)
        assert config.selected_attr_count(10) == 5

    def test_fraction_at_least_one(self):
        config = CajadeConfig(num_selected_attrs=0.01)
        assert config.selected_attr_count(10) == 1
