"""Unit tests for correlation-based attribute clustering."""

import numpy as np
import pytest

from repro.ml import (
    cluster_attributes,
    correlation_matrix,
    encode_columns,
    pick_cluster_representatives,
)


class TestEncodeColumns:
    def test_numeric_passthrough(self):
        cols = {"a": np.array([1.0, 2.0, 3.0])}
        m = encode_columns(cols)
        assert m.shape == (3, 1)
        assert np.allclose(m[:, 0], [1, 2, 3])

    def test_text_label_encoding(self):
        cols = {"a": np.array(["x", "y", "x"], dtype=object)}
        m = encode_columns(cols)
        assert m[:, 0].tolist() == [0.0, 1.0, 0.0]

    def test_nan_filled_with_mean(self):
        cols = {"a": np.array([1.0, np.nan, 3.0])}
        m = encode_columns(cols)
        assert m[1, 0] == pytest.approx(2.0)

    def test_empty(self):
        assert encode_columns({}).size == 0


class TestCorrelationMatrix:
    def test_diagonal_ones(self, rng):
        m = rng.normal(size=(100, 3))
        corr = correlation_matrix(m)
        assert np.allclose(np.diag(corr), 1.0)

    def test_absolute_value(self, rng):
        x = rng.normal(size=200)
        m = np.column_stack([x, -x])
        corr = correlation_matrix(m)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_constant_column_zero_corr(self, rng):
        m = np.column_stack([rng.normal(size=50), np.ones(50)])
        corr = correlation_matrix(m)
        assert corr[0, 1] == 0.0


class TestClustering:
    def test_correlated_pair_clusters(self, rng):
        x = rng.normal(size=500)
        cols = {
            "age": x,
            "birth_offset": -x + 0.001 * rng.normal(size=500),
            "other": rng.normal(size=500),
        }
        clusters = cluster_attributes(cols, threshold=0.9)
        grouped = {frozenset(c.members) for c in clusters}
        assert frozenset({"age", "birth_offset"}) in grouped
        assert frozenset({"other"}) in grouped

    def test_one_representative_each(self, rng):
        x = rng.normal(size=300)
        cols = {"a": x, "b": 2 * x, "c": rng.normal(size=300)}
        clusters = cluster_attributes(cols)
        reps = pick_cluster_representatives(clusters)
        assert len(reps) == 2
        for cluster in clusters:
            assert cluster.representative in cluster.members

    def test_threshold_controls_merging(self, rng):
        x = rng.normal(size=500)
        y = x + rng.normal(size=500)  # corr ≈ 0.7
        cols = {"a": x, "b": y}
        loose = cluster_attributes(cols, threshold=0.5)
        tight = cluster_attributes(cols, threshold=0.95)
        assert len(loose) == 1
        assert len(tight) == 2

    def test_transitive_single_linkage(self, rng):
        x = rng.normal(size=800)
        cols = {
            "a": x,
            "b": x + 0.05 * rng.normal(size=800),
            "c": x + 0.10 * rng.normal(size=800),
        }
        clusters = cluster_attributes(cols, threshold=0.9)
        assert len(clusters) == 1
        assert set(clusters[0].members) == {"a", "b", "c"}

    def test_empty_input(self):
        assert cluster_attributes({}) == []

    def test_deterministic_order(self, rng):
        cols = {"z": rng.normal(size=50), "a": rng.normal(size=50)}
        clusters = cluster_attributes(cols)
        assert [c.representative for c in clusters] == ["a", "z"]

    def test_categorical_identity_redundancy(self, rng):
        # An id column and its name column are perfectly correlated.
        ids = rng.integers(0, 5, size=400)
        names = np.array([f"name{i}" for i in ids], dtype=object)
        cols = {"player_id": ids.astype(float), "player_name": names}
        clusters = cluster_attributes(cols, threshold=0.9)
        assert len(clusters) == 1


class TestKernelCodeReuse:
    """Kernel-supplied first-occurrence codes must yield the same
    Cramér's V values and the same clusters as from-scratch encoding."""

    def make_columns(self, rng, with_nulls=True):
        cats = ["red", "green", "blue"]
        if with_nulls:
            cats.append(None)
        a = np.array(
            [cats[i] for i in rng.integers(0, len(cats), size=300)],
            dtype=object,
        )
        # b is determined by a (an alias), c is independent
        b = np.array(
            [None if v is None else f"code-{v}" for v in a], dtype=object
        )
        c = np.array(
            [f"t{i}" for i in rng.integers(0, 4, size=300)], dtype=object
        )
        return {"a": a, "b": b, "c": c, "n": rng.normal(size=300)}

    def kernel_codes(self, cols):
        from repro.core.kernel import MiningKernel

        n = len(next(iter(cols.values())))
        kernel = MiningKernel(cols, np.arange(n), m1=n, m2=0)
        return {
            name: codes
            for name in cols
            if (codes := kernel.ml_codes(name)) is not None
        }

    def test_cramers_v_identical(self, rng):
        from repro.ml import cramers_v

        cols = self.make_columns(rng)
        codes = self.kernel_codes(cols)
        for x, y in (("a", "b"), ("a", "c"), ("b", "c")):
            assert cramers_v(cols[x], cols[y]) == cramers_v(
                cols[x], cols[y], a_codes=codes[x], b_codes=codes[y]
            )

    def test_clusters_identical(self, rng):
        cols = self.make_columns(rng)
        codes = self.kernel_codes(cols)
        without = cluster_attributes(cols, threshold=0.9, same_type_only=True)
        with_codes = cluster_attributes(
            cols, threshold=0.9, same_type_only=True, codes=codes
        )
        assert without == with_codes
        grouped = {frozenset(c.members) for c in with_codes}
        assert frozenset({"a", "b"}) in grouped

    def test_association_matrix_identical(self, rng):
        from repro.ml import association_matrix

        cols = self.make_columns(rng, with_nulls=False)
        codes = self.kernel_codes(cols)
        np.testing.assert_array_equal(
            association_matrix(cols), association_matrix(cols, codes=codes)
        )
