"""Tests for join-condition discovery (§8 extension)."""

import pytest

from repro.core import SchemaGraph
from repro.core.join_discovery import (
    JoinCandidate,
    augment_schema_graph,
    discover_join_candidates,
)
from repro.db import ColumnType, Database, TableSchema


@pytest.fixture()
def db() -> Database:
    d = Database("disc")
    d.create_table(
        TableSchema.build(
            "city", {"city_code": ColumnType.TEXT, "pop": ColumnType.INT},
            primary_key=("city_code",),
        ),
        [("NYC", 8), ("LA", 4), ("SF", 1), ("CHI", 3), ("BOS", 1)],
    )
    d.create_table(
        TableSchema.build(
            "office",
            {"office_id": ColumnType.INT, "located_in": ColumnType.TEXT},
            primary_key=("office_id",),
        ),
        [(1, "NYC"), (2, "NYC"), (3, "LA"), (4, "SF"), (5, "CHI")],
    )
    return d


class TestDiscovery:
    def test_finds_undeclared_inclusion(self, db):
        candidates = discover_join_candidates(db, min_inclusion=0.9)
        described = {c.describe().split(" (")[0] for c in candidates}
        assert "office.located_in ⊆ city.city_code" in described

    def test_declared_fks_skipped(self, db):
        db.add_foreign_key("office", ("located_in",), "city", ("city_code",))
        candidates = discover_join_candidates(db, min_inclusion=0.9)
        pairs = {
            (c.table_a, c.column_a, c.table_b, c.column_b)
            for c in candidates
        }
        assert ("office", "located_in", "city", "city_code") not in pairs

    def test_inclusion_threshold(self, db):
        # city_code ⊄ located_in (BOS missing): inclusion 0.8 < 0.9.
        candidates = discover_join_candidates(db, min_inclusion=0.9)
        pairs = {
            (c.table_a, c.column_a, c.table_b, c.column_b)
            for c in candidates
        }
        assert ("city", "city_code", "office", "located_in") not in pairs
        loose = discover_join_candidates(db, min_inclusion=0.7)
        loose_pairs = {
            (c.table_a, c.column_a, c.table_b, c.column_b) for c in loose
        }
        assert ("city", "city_code", "office", "located_in") in loose_pairs

    def test_type_compatibility_respected(self, db):
        candidates = discover_join_candidates(db, min_inclusion=0.5)
        for c in candidates:
            type_a = db.table(c.table_a).column_type(c.column_a)
            type_b = db.table(c.table_b).column_type(c.column_b)
            assert type_a.is_categorical == type_b.is_categorical

    def test_min_distinct_filters_tiny_domains(self, db):
        db.create_table(
            TableSchema.build("flags", {"flag": ColumnType.TEXT}),
            [("NYC",), ("LA",)],
        )
        candidates = discover_join_candidates(db, min_distinct=3)
        assert all(
            "flags" not in (c.table_a, c.table_b) for c in candidates
        )

    def test_sorted_by_inclusion(self, db):
        candidates = discover_join_candidates(db, min_inclusion=0.5)
        inclusions = [c.inclusion for c in candidates]
        assert inclusions == sorted(inclusions, reverse=True)


class TestAugmentation:
    def test_adds_conditions(self, db):
        graph = SchemaGraph.from_database(db)
        before = graph.num_conditions()
        candidates = discover_join_candidates(db, min_inclusion=0.9)
        added = augment_schema_graph(graph, candidates)
        assert added >= 1
        assert graph.num_conditions() == before + added

    def test_symmetric_candidates_deduplicated(self):
        graph = SchemaGraph()
        candidates = [
            JoinCandidate("a", "x", "b", "y", 1.0),
            JoinCandidate("b", "y", "a", "x", 1.0),
        ]
        assert augment_schema_graph(graph, candidates) == 1

    def test_limit(self, db):
        graph = SchemaGraph.from_database(db)
        candidates = discover_join_candidates(db, min_inclusion=0.5)
        added = augment_schema_graph(graph, candidates, limit=1)
        assert added <= 1

    def test_discovered_edges_usable_by_cajade(self, db):
        """End-to-end: a discovered join provides explanation context."""
        from repro import CajadeConfig, CajadeExplainer, ComparisonQuestion

        graph = SchemaGraph.from_database(db)
        augment_schema_graph(
            graph, discover_join_candidates(db, min_inclusion=0.9)
        )
        # Ask why NYC has more offices than LA; city.pop arrives as
        # context through the discovered join.
        config = CajadeConfig(
            max_join_edges=1, top_k=3, f1_sample_rate=1.0,
            lca_sample_rate=1.0, num_selected_attrs=4,
        )
        explainer = CajadeExplainer(db, graph, config)
        result = explainer.explain(
            "SELECT located_in, COUNT(*) AS n FROM office "
            "GROUP BY located_in",
            ComparisonQuestion({"located_in": "NYC"}, {"located_in": "LA"}),
        )
        assert result.explanations
        contextual = [
            e for e in result.explanations if e.join_graph.num_edges > 0
        ]
        assert contextual


class TestTextOnly:
    def test_text_only_excludes_numeric_pairs(self, db):
        candidates = discover_join_candidates(
            db, min_inclusion=0.5, text_only=True
        )
        for c in candidates:
            assert db.table(c.table_a).column_type(c.column_a).is_categorical
            assert db.table(c.table_b).column_type(c.column_b).is_categorical
