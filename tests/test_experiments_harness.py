"""Tests for the experiment harness (run at tiny scales)."""

import pytest

from repro.core import CajadeConfig, JoinConditionSpec, JoinGraph
from repro.datasets import query_by_name, user_study_query
from repro.experiments import (
    et_comparison_experiment,
    explain_with_breakdown,
    f1_sampling_quality_experiment,
    feature_selection_experiment,
    join_graph_size_experiment,
    lca_sampling_experiment,
    varying_queries_experiment,
)

FAST = dict(
    max_join_edges=1,
    top_k=5,
    f1_sample_rate=1.0,
    num_selected_attrs=3,
    seed=2,
)


@pytest.fixture(scope="module")
def nba():
    from repro.datasets import load_nba

    return load_nba(scale=0.12, seed=5)


class TestBreakdown:
    def test_steps_present(self, nba):
        db, sg = nba
        result, breakdown = explain_with_breakdown(
            db, sg, user_study_query(), CajadeConfig(**FAST)
        )
        assert result.explanations
        assert "F-score Calc." in breakdown
        assert "Materialize APTs" in breakdown
        assert all(v >= 0 for v in breakdown.values())


class TestFeatureSelectionExperiment:
    def test_columns_and_rows(self, nba):
        db, sg = nba
        table = feature_selection_experiment(
            db, sg, user_study_query(), [1.0], CajadeConfig(**FAST)
        )
        assert set(table) == {"fs λF1=1", "w/o feature sel."}
        assert "Feature Selection" in table["fs λF1=1"]
        # The naive arm never runs the feature-selection step.
        assert "Feature Selection" not in table["w/o feature sel."] or (
            table["w/o feature sel."]["Feature Selection"] == 0.0
        )


class TestJoinGraphSizeExperiment:
    def test_grid_keys(self, nba):
        db, sg = nba
        grid = join_graph_size_experiment(
            db, sg, user_study_query(), [0, 1], [1.0], CajadeConfig(**FAST)
        )
        assert set(grid) == {(0, 1.0), (1, 1.0)}
        assert grid[(1, 1.0)] >= grid[(0, 1.0)] * 0.2  # sanity: positive

    def test_more_edges_cost_more(self, nba):
        db, sg = nba
        grid = join_graph_size_experiment(
            db, sg, user_study_query(), [0, 2], [1.0], CajadeConfig(**FAST)
        )
        assert grid[(2, 1.0)] > grid[(0, 1.0)]


class TestLcaSamplingExperiment:
    def test_match_counts(self, nba):
        db, sg = nba
        graph = JoinGraph.initial({"g": "game", "t": "team", "s": "season"})
        cond = JoinConditionSpec(
            (("game_date", "game_date"), ("home_id", "home_id"))
        )
        graph = graph.with_new_node(0, "team_game_stats", cond, "g")
        team_cond = JoinConditionSpec((("team_id", "team_id"),))
        graph = graph.with_new_node(1, "team", team_cond, None)
        points, rows, attrs = lca_sampling_experiment(
            db,
            user_study_query(),
            graph,
            [0.3, 1.0],
            CajadeConfig(**FAST),
        )
        assert rows > 0 and attrs > 0
        assert len(points) == 2
        for point in points:
            assert 0 <= point.matches_in_top10 <= 10
        # Full-rate run must recover the ground truth exactly.
        assert points[-1].matches_in_top10 == 10 or (
            points[-1].matches_in_top10 > 0
        )


class TestF1SamplingQuality:
    def test_ndcg_and_recall(self, nba):
        db, sg = nba
        out = f1_sampling_quality_experiment(
            db, sg, user_study_query(), [1.0], CajadeConfig(**FAST)
        )
        assert out[1.0]["ndcg"] == pytest.approx(1.0)
        assert out[1.0]["recall"] == pytest.approx(1.0)


class TestEtComparison:
    def test_runtime_table(self, nba):
        db, sg = nba
        graph = JoinGraph.initial({"g": "game", "t": "team", "s": "season"})
        cond = JoinConditionSpec(
            (("game_date", "game_date"), ("home_id", "home_id"))
        )
        graph = graph.with_new_node(0, "player_game_stats", cond, "g")
        player_cond = JoinConditionSpec((("player_id", "player_id"),))
        graph = graph.with_new_node(1, "player", player_cond, None)
        table = et_comparison_experiment(
            db, user_study_query(), graph, [16, 64], CajadeConfig(**FAST)
        )
        assert set(table) == {16, 64}
        for size in table:
            assert table[size]["cajade"] > 0
            assert table[size]["et"] > 0
        # ET grows faster with sample size (the Fig 11 crossover shape).
        assert table[64]["et"] > table[16]["et"]


class TestVaryingQueries:
    def test_subset_runs(self, nba, mimic_small):
        db, sg = nba
        queries = [query_by_name("Qnba4"), query_by_name("Qmimic2")]
        out = varying_queries_experiment(
            (db, sg), mimic_small, CajadeConfig(**FAST), queries=queries
        )
        assert set(out) == {"Qnba4", "Qmimic2"}
        for stats in out.values():
            assert stats["runtime"] > 0
            assert stats["join_graphs"] >= 1
