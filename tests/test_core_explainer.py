"""End-to-end tests for the CajadeExplainer public API."""

import pytest

from repro import (
    CajadeConfig,
    CajadeExplainer,
    ComparisonQuestion,
    OutlierQuestion,
)
from repro.core.timing import StepTimer
from tests.conftest import GSW_WINS_SQL


@pytest.fixture()
def explainer(mini_db, mini_schema_graph) -> CajadeExplainer:
    config = CajadeConfig(
        max_join_edges=2,
        top_k=5,
        f1_sample_rate=1.0,
        lca_sample_rate=1.0,
        num_selected_attrs=4,
        seed=1,
    )
    return CajadeExplainer(mini_db, mini_schema_graph, config)


QUESTION = ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"})


class TestExplain:
    def test_returns_ranked_explanations(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        assert result.explanations
        assert len(result.explanations) <= 5
        top = result.explanations[0]
        assert 0.0 <= top.f_score <= 1.0

    def test_context_explanation_present(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        contextual = [
            e for e in result.explanations if e.join_graph.num_edges > 0
        ]
        assert contextual
        # The star-player signal should dominate the mini db.
        used = set()
        for e in contextual:
            used |= e.pattern.attributes
        assert "player_game.pts" in used or "player.player_name" in used

    def test_supports_are_exact_counts(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        for e in result.explanations:
            s = e.support
            assert 0 <= s.covered1 <= s.total1 == 6
            assert 0 <= s.covered2 <= s.total2 == 3

    def test_k_override(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION, k=2)
        assert len(result.explanations) <= 2

    def test_timer_populated(self, explainer):
        timer = StepTimer()
        explainer.explain(GSW_WINS_SQL, QUESTION, timer=timer)
        breakdown = timer.breakdown()
        assert "F-score Calc." in breakdown
        assert "Materialize APTs" in breakdown
        assert timer.total > 0

    def test_describe_renders(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        text = result.describe(3)
        assert "question:" in text
        assert "F=" in text
        full = result.explanations[0].describe_full()
        assert "join graph" in full

    def test_outlier_question(self, explainer):
        result = explainer.explain(
            GSW_WINS_SQL, OutlierQuestion({"season": "2015-16"})
        )
        assert result.explanations
        for e in result.explanations:
            assert e.support.total2 == 3  # rest of provenance

    def test_query_object_accepted(self, explainer):
        from repro.db import parse_sql

        result = explainer.explain(parse_sql(GSW_WINS_SQL), QUESTION)
        assert result.explanations

    def test_same_question_tuples_rejected(self, explainer):
        with pytest.raises(ValueError):
            explainer.explain(
                GSW_WINS_SQL,
                ComparisonQuestion(
                    {"season": "2015-16"}, {"season": "2015-16"}
                ),
            )

    def test_deterministic_across_runs(self, explainer):
        r1 = explainer.explain(GSW_WINS_SQL, QUESTION)
        r2 = explainer.explain(GSW_WINS_SQL, QUESTION)
        assert [e.pattern for e in r1.explanations] == [
            e.pattern for e in r2.explanations
        ]

    def test_sampled_f1_supports_still_exact(
        self, mini_db, mini_schema_graph
    ):
        config = CajadeConfig(
            max_join_edges=1,
            top_k=3,
            f1_sample_rate=0.8,
            lca_sample_rate=1.0,
            num_selected_attrs=4,
        )
        explainer = CajadeExplainer(mini_db, mini_schema_graph, config)
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        for e in result.explanations:
            assert e.support.total1 == 6
            assert e.support.total2 == 3

    def test_diversity_avoids_duplicate_patterns(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        keys = [(e.pattern, e.primary) for e in result.explanations]
        assert len(keys) == len(set(keys))


class TestDefaultSchemaGraph:
    def test_from_database_default(self, mini_db):
        explainer = CajadeExplainer(
            mini_db,
            config=CajadeConfig(
                max_join_edges=1, f1_sample_rate=1.0, num_selected_attrs=3
            ),
        )
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        assert result.explanations


class TestJsonExport:
    def test_to_json_roundtrips(self, explainer):
        import json

        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        payload = json.loads(result.to_json(k=3))
        assert payload["explanations"]
        first = payload["explanations"][0]
        assert {"pattern", "f_score", "support", "join_graph", "sentence"} <= set(first)
        assert 0.0 <= first["f_score"] <= 1.0
        for predicate in first["pattern"]:
            assert predicate["op"] in ("=", "<=", ">=")

    def test_to_dict_values_serializable(self, explainer):
        import json

        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        for explanation in result.explanations:
            json.dumps(explanation.to_dict(), default=str)
