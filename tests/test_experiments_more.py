"""Additional experiment-harness coverage: scalability runner and the
feature-selection experiment's timing semantics."""

import pytest

from repro.core import CajadeConfig
from repro.datasets import load_nba, user_study_query
from repro.experiments import scalability_experiment


class TestScalabilityExperiment:
    def test_series_shape(self):
        config = CajadeConfig(
            max_join_edges=1, top_k=3, num_selected_attrs=3, seed=2
        )
        series = scalability_experiment(
            lambda s: load_nba(scale=s, seed=5),
            user_study_query(),
            [0.06, 0.12],
            f1_rate=0.5,
            base_config=config,
        )
        assert set(series) == {0.06, 0.12}
        for breakdown in series.values():
            assert breakdown["total"] > 0
            assert "F-score Calc." in breakdown

    def test_larger_scale_not_cheaper_by_much(self):
        config = CajadeConfig(
            max_join_edges=1, top_k=3, num_selected_attrs=3, seed=2
        )
        series = scalability_experiment(
            lambda s: load_nba(scale=s, seed=5),
            user_study_query(),
            [0.06, 0.25],
            f1_rate=0.5,
            base_config=config,
        )
        # 4x the data should not make the run dramatically faster.
        assert series[0.25]["total"] > series[0.06]["total"] * 0.5
