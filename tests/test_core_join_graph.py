"""Unit tests for join graphs."""

import pytest

from repro.core import JoinConditionSpec, JoinGraph, PT_LABEL


COND = JoinConditionSpec((("year", "year"), ("gameno", "gameno")))
COND2 = JoinConditionSpec((("player_id", "player_id"),))


def initial() -> JoinGraph:
    return JoinGraph.initial({"g": "game"})


class TestBasicStructure:
    def test_initial_has_only_pt(self):
        graph = initial()
        assert graph.pt_node.label == PT_LABEL
        assert graph.num_edges == 0
        assert graph.context_nodes == []
        assert graph.structure() == "PT"

    def test_with_new_node(self):
        graph = initial().with_new_node(0, "player_game", COND, "g")
        assert graph.num_edges == 1
        assert [n.label for n in graph.context_nodes] == ["player_game"]
        assert graph.edges[0].pt_alias == "g"

    def test_extension_does_not_mutate_original(self):
        graph = initial()
        graph.with_new_node(0, "player_game", COND, "g")
        assert graph.num_edges == 0

    def test_with_new_edge_duplicate_returns_none(self):
        graph = initial().with_new_node(0, "player_game", COND, "g")
        dup = graph.with_new_edge(0, 1, COND, "g")
        assert dup is None

    def test_with_new_edge_parallel_allowed(self):
        graph = initial().with_new_node(0, "player_game", COND, "g")
        other = JoinConditionSpec((("year", "year"),))
        parallel = graph.with_new_edge(0, 1, other, "g")
        assert parallel is not None
        assert parallel.num_edges == 2

    def test_edges_between(self):
        graph = initial().with_new_node(0, "player_game", COND, "g")
        assert len(graph.edges_between(0, 1)) == 1
        assert graph.edges_between(0, 9) == []

    def test_node_lookup(self):
        graph = initial().with_new_node(0, "x", COND2, "g")
        assert graph.node(1).label == "x"
        with pytest.raises(KeyError):
            graph.node(42)


class TestAliases:
    def test_unique_aliases_for_repeated_relation(self):
        graph = (
            initial()
            .with_new_node(0, "lineup_player", COND2, "g")
            .with_new_node(1, "lineup_player", COND2, None)
        )
        aliases = graph.materialization_aliases()
        assert sorted(aliases.values()) == [
            "lineup_player", "lineup_player2",
        ]

    def test_alias_avoids_query_alias_collision(self):
        graph = JoinGraph.initial({"admissions": "admissions"})
        graph = graph.with_new_node(0, "admissions", COND2, "admissions")
        aliases = graph.materialization_aliases()
        assert list(aliases.values()) == ["admissions2"]


class TestSignature:
    def test_isomorphic_graphs_same_signature(self):
        # Build PT—A—B in two node orders; signature must coincide.
        a_first = (
            initial()
            .with_new_node(0, "a", COND2, "g")
            .with_new_node(1, "b", COND2, None)
        )
        direct = (
            initial()
            .with_new_node(0, "a", COND2, "g")
            .with_new_node(1, "b", COND2, None)
        )
        assert a_first.signature() == direct.signature()

    def test_same_label_nodes_interchangeable(self):
        # PT—X, PT—X with two parallel structures added in swapped order.
        g1 = (
            initial()
            .with_new_node(0, "x", COND, "g")
            .with_new_node(0, "x", COND2, "g")
        )
        g2 = (
            initial()
            .with_new_node(0, "x", COND2, "g")
            .with_new_node(0, "x", COND, "g")
        )
        assert g1.signature() == g2.signature()

    def test_different_conditions_differ(self):
        g1 = initial().with_new_node(0, "x", COND, "g")
        g2 = initial().with_new_node(0, "x", COND2, "g")
        assert g1.signature() != g2.signature()

    def test_structure_vs_chain_differs(self):
        chain = (
            initial()
            .with_new_node(0, "x", COND, "g")
            .with_new_node(1, "y", COND2, None)
        )
        star = (
            initial()
            .with_new_node(0, "x", COND, "g")
            .with_new_node(0, "y", COND2, "g")
        )
        assert chain.signature() != star.signature()


class TestDescription:
    def test_structure_string(self):
        graph = (
            initial()
            .with_new_node(0, "player_game", COND, "g")
            .with_new_node(1, "player", COND2, None)
        )
        assert graph.structure() == "PT - player_game ; player_game - player"

    def test_describe_includes_conditions(self):
        graph = initial().with_new_node(0, "player_game", COND, "g")
        text = graph.describe()
        assert "PT[g].year = player_game.year" in text
