"""Exact-twin tests for the histogram frontier-at-a-time forest.

``HistRandomForestClassifier`` promises **bit-identical** results to the
reference ``RandomForestClassifier`` when the reference examines every
feature at every split (``max_features = n_features``): same bootstrap
draws, same trees, same thresholds, same predictions, same importances.
These tests hold the twin to that promise on adversarial inputs — NULL
-1 dictionary codes, NaN, -inf, constant columns, single-class labels,
duplicate-heavy columns, and n_rows below ``min_samples_split`` — plus
the usual API edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    HistRandomForestClassifier,
    RandomForestClassifier,
    apply_bins,
    bin_matrix,
)

FOREST_PARAMS = dict(n_estimators=4, max_depth=4, max_samples=64)


def make_matrix(seed: int, n_rows: int, n_features: int):
    """Adversarial feature matrix: integral codes (with -1 NULLs),
    noisy floats, constants, duplicate-heavy choice columns with NaN,
    and an occasional -inf sprinkle."""
    rng = np.random.default_rng(seed)
    X = np.empty((n_rows, n_features))
    for j in range(n_features):
        kind = (seed + j) % 4
        if kind == 0:
            X[:, j] = rng.integers(-1, 20, size=n_rows)
        elif kind == 1:
            X[:, j] = rng.normal(size=n_rows) * 50
        elif kind == 2:
            X[:, j] = float(seed % 7)
        else:
            X[:, j] = rng.choice(
                [0.5, -2.25, 7.0, np.nan], size=n_rows
            )
    if seed % 5 == 0 and n_rows > 2:
        X[rng.integers(0, n_rows, size=2), 0] = -np.inf
    if seed % 3 == 0:
        y = np.ones(n_rows)
    else:
        y = (rng.random(n_rows) < 0.4).astype(float)
    return X, y


def fit_pair(X, y, seed=0, **overrides):
    params = {**FOREST_PARAMS, **overrides}
    hist = HistRandomForestClassifier(random_state=seed, **params).fit(
        X, y
    )
    ref = RandomForestClassifier(
        max_features=X.shape[1], random_state=seed, **params
    ).fit(X, y)
    return hist, ref


def assert_twin(hist, ref, X):
    assert np.array_equal(
        hist.feature_importances_, ref.feature_importances_
    )
    for ht, rt in zip(hist.trees_, ref.trees_):
        assert np.array_equal(
            ht.feature_importances_, rt.feature_importances_
        )
    assert np.array_equal(hist.predict_proba(X), ref.predict_proba(X))
    assert np.array_equal(hist.predict(X), ref.predict(X))


class TestExactTwin:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        n_rows=st.integers(1, 160),
        n_features=st.integers(1, 6),
    )
    def test_matches_reference_bitwise(self, seed, n_rows, n_features):
        X, y = make_matrix(seed, n_rows, n_features)
        hist, ref = fit_pair(X, y, seed=seed % 17)
        assert_twin(hist, ref, X)

    def test_single_class_labels(self, rng):
        X = rng.normal(size=(80, 3))
        y = np.ones(80)
        hist, ref = fit_pair(X, y)
        assert_twin(hist, ref, X)
        assert np.all(hist.predict_proba(X) == 1.0)

    def test_all_constant_columns(self):
        X = np.full((50, 4), 3.25)
        y = np.tile([0.0, 1.0], 25)
        hist, ref = fit_pair(X, y)
        assert_twin(hist, ref, X)
        assert hist.feature_importances_.sum() == 0.0

    def test_null_code_columns(self, rng):
        # Dictionary-code columns as the pipeline feeds them: small
        # non-negative ints with -1 standing in for NULL.
        X = rng.integers(-1, 6, size=(120, 3)).astype(float)
        y = (X[:, 0] > 2).astype(float)
        hist, ref = fit_pair(X, y)
        assert_twin(hist, ref, X)

    def test_nan_and_minus_inf(self, rng):
        X = rng.normal(size=(100, 3))
        X[::7, 0] = np.nan
        X[::11, 1] = -np.inf
        y = (rng.random(100) < 0.5).astype(float)
        hist, ref = fit_pair(X, y)
        assert_twin(hist, ref, X)

    def test_below_min_samples_split(self, rng):
        X = rng.normal(size=(4, 2))
        y = np.array([0.0, 1.0, 0.0, 1.0])
        hist, ref = fit_pair(X, y, max_samples=None)
        assert_twin(hist, ref, X)
        assert all(t.depth == 0 for t in hist.trees_)

    def test_no_bootstrap_cap(self, rng):
        X = rng.normal(size=(90, 3))
        y = (X[:, 1] > 0).astype(float)
        hist, ref = fit_pair(X, y, max_samples=None)
        assert_twin(hist, ref, X)

    def test_accuracy_matches(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        hist, ref = fit_pair(X, y)
        assert hist.accuracy(X, y) == ref.accuracy(X, y)
        assert hist.accuracy(X, y) > 0.8

    def test_categorical_hint_never_changes_fit(self, rng):
        X = rng.integers(0, 12, size=(150, 4)).astype(float)
        y = (X[:, 2] > 5).astype(float)
        plain = HistRandomForestClassifier(
            random_state=3, **FOREST_PARAMS
        ).fit(X, y)
        hinted = HistRandomForestClassifier(
            random_state=3, **FOREST_PARAMS
        ).fit(X, y, categorical_features={0, 1, 2, 3})
        assert np.array_equal(
            plain.feature_importances_, hinted.feature_importances_
        )
        assert np.array_equal(
            plain.predict_proba(X), hinted.predict_proba(X)
        )


class TestApi:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            HistRandomForestClassifier().fit(
                np.zeros((0, 2)), np.zeros(0)
            )

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            HistRandomForestClassifier().fit(np.zeros(5), np.zeros(5))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HistRandomForestClassifier().fit(
                np.zeros((4, 2)), np.zeros(3)
            )

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HistRandomForestClassifier().predict(np.zeros((1, 2)))

    def test_work_counters_populated(self, rng):
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(float)
        forest = HistRandomForestClassifier(
            random_state=1, **FOREST_PARAMS
        ).fit(X, y)
        assert forest.nodes_grown >= len(forest.trees_)
        assert forest.histograms_built > 0
        assert forest.splits_evaluated > 0


class TestBinning:
    def test_uniques_sorted_finite(self, rng):
        X = rng.normal(size=(60, 2))
        X[::5, 0] = np.nan
        X[::9, 1] = -np.inf
        binned = bin_matrix(X)
        for uniq in binned.uniques:
            assert np.all(np.isfinite(uniq))
            assert np.all(np.diff(uniq) > 0)

    def test_codes_roundtrip_through_uniques(self, rng):
        X = rng.choice([-3.5, 0.0, 2.0, 9.75], size=(80, 3))
        binned = bin_matrix(X)
        for j in range(3):
            assert np.array_equal(
                binned.uniques[j][binned.bins[:, j]], X[:, j]
            )

    def test_nan_and_infinities_get_sentinel_bins(self):
        X = np.array([[np.nan], [-np.inf], [np.inf], [1.0], [2.0]])
        binned = bin_matrix(X)
        assert binned.bins[0, 0] == binned.n_bins[0]  # NaN above all
        assert binned.bins[1, 0] == -1  # -inf below all
        assert binned.bins[2, 0] == binned.n_bins[0]  # +inf above all
        assert binned.n_bins[0] == 2

    def test_integral_fast_path_matches_generic(self, rng):
        X = rng.integers(-1, 40, size=(100, 2)).astype(float)
        fast = bin_matrix(X, categorical_features={0, 1})
        generic = bin_matrix(X + 0.5)  # forces the sort-based path
        assert np.array_equal(fast.bins, generic.bins)
        for j in range(2):
            assert np.array_equal(
                fast.uniques[j] + 0.5, generic.uniques[j]
            )

    def test_apply_bins_quantizes_to_lower_rank(self, rng):
        X = rng.normal(size=(50, 2))
        binned = bin_matrix(X)
        # Training rows land exactly on their own bins.
        assert np.array_equal(apply_bins(X, binned), binned.bins)
        # Unseen values snap to the rank of the largest unique below;
        # values below every unique share the -inf slot.
        probe = np.array([[binned.uniques[0][3] + 1e-9, -1e9]])
        snapped = apply_bins(probe, binned)
        assert snapped[0, 0] == 3
        assert snapped[0, 1] == -1
