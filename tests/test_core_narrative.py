"""Tests for natural-language explanation rendering."""

import pytest

from repro import CajadeConfig, CajadeExplainer, ComparisonQuestion
from repro.core import pattern_phrase, predicate_phrase
from repro.core.pattern import OP_EQ, OP_GE, OP_LE, PatternPredicate
from tests.conftest import GSW_WINS_SQL


class TestPredicatePhrase:
    def test_equality(self):
        pred = PatternPredicate("player.player_name", OP_EQ, "Curry")
        assert predicate_phrase(pred) == "player name is Curry"

    def test_at_least(self):
        pred = PatternPredicate("pg.pts", OP_GE, 23)
        assert predicate_phrase(pred) == "pts is at least 23"

    def test_at_most_with_float(self):
        pred = PatternPredicate("pg.minutes", OP_LE, 31.5)
        assert predicate_phrase(pred) == "minutes is at most 31.5"


class TestSentences:
    @pytest.fixture(scope="class")
    def result(self, mini_db, mini_schema_graph):
        config = CajadeConfig(
            max_join_edges=2,
            top_k=5,
            f1_sample_rate=1.0,
            lca_sample_rate=1.0,
            num_selected_attrs=4,
        )
        explainer = CajadeExplainer(mini_db, mini_schema_graph, config)
        return explainer.explain(
            GSW_WINS_SQL,
            ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"}),
        )

    def test_sentence_structure(self, result):
        sentence = result.explanations[0].to_sentence()
        assert sentence.endswith(".")
        assert "because" in sentence
        assert "out of" in sentence

    def test_sentence_mentions_primary_label(self, result):
        for explanation in result.explanations:
            assert explanation.primary_label in explanation.to_sentence()

    def test_context_tables_named(self, result):
        contextual = [
            e for e in result.explanations if e.join_graph.num_edges > 0
        ]
        assert contextual
        sentence = contextual[0].to_sentence()
        assert "context from" in sentence

    def test_pt_only_has_no_context_clause(self, result):
        plain = [
            e for e in result.explanations if e.join_graph.num_edges == 0
        ]
        if plain:
            assert "context from" not in plain[0].to_sentence()

    def test_multi_predicate_joined_with_and(self, result):
        multi = [e for e in result.explanations if e.pattern.size >= 2]
        if multi:
            assert " and " in pattern_phrase(multi[0])
