"""Unit tests for summarization patterns (Definition 5)."""

import numpy as np
import pytest

from repro.core import OP_EQ, OP_GE, OP_LE, Pattern, PatternPredicate


@pytest.fixture()
def columns() -> dict:
    return {
        "player": np.array(
            ["Curry", "Curry", "Green", None, "Curry"], dtype=object
        ),
        "pts": np.array([30.0, 20.0, 8.0, 25.0, np.nan]),
        "minutes": np.array([36, 30, 20, 28, 33], dtype=np.int64),
    }


class TestPredicate:
    def test_equality_on_categorical(self, columns):
        pred = PatternPredicate("player", OP_EQ, "Curry")
        assert pred.matches_array(columns["player"]).tolist() == [
            True, True, False, False, True,
        ]

    def test_null_never_matches(self, columns):
        pred = PatternPredicate("pts", OP_GE, 0)
        assert pred.matches_array(columns["pts"]).tolist() == [
            True, True, True, True, False,
        ]

    def test_le_ge_on_numeric(self, columns):
        le = PatternPredicate("pts", OP_LE, 20.0)
        assert le.matches_array(columns["pts"]).tolist() == [
            False, True, True, False, False,
        ]
        ge = PatternPredicate("minutes", OP_GE, 30)
        assert ge.matches_array(columns["minutes"]).tolist() == [
            True, True, False, False, True,
        ]

    def test_inequality_on_categorical_rejected(self, columns):
        pred = PatternPredicate("player", OP_LE, "Curry")
        with pytest.raises(ValueError):
            pred.matches_array(columns["player"])

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            PatternPredicate("x", "<", 1)

    def test_describe_rounds_floats(self):
        pred = PatternPredicate("pts", OP_GE, 23.000000001)
        assert pred.describe() == "pts>=23"

    def test_describe_handles_nan_and_inf(self):
        """NaN constants surface through LCA singletons on object
        columns; describe must render them instead of raising."""
        assert (
            PatternPredicate("a", OP_EQ, float("nan")).describe() == "a=nan"
        )
        assert (
            PatternPredicate("a", OP_GE, float("inf")).describe() == "a>=inf"
        )


class TestPattern:
    def test_empty_pattern_matches_all(self, columns):
        assert Pattern().match_mask(columns).all()
        assert Pattern().size == 0

    def test_conjunction(self, columns):
        pattern = Pattern(
            [
                PatternPredicate("player", OP_EQ, "Curry"),
                PatternPredicate("pts", OP_GE, 23),
            ]
        )
        assert pattern.match_mask(columns).tolist() == [
            True, False, False, False, False,
        ]

    def test_structural_equality_and_hash(self):
        p1 = Pattern(
            [
                PatternPredicate("a", OP_EQ, 1),
                PatternPredicate("b", OP_LE, 2),
            ]
        )
        p2 = Pattern(
            [
                PatternPredicate("b", OP_LE, 2),
                PatternPredicate("a", OP_EQ, 1),
            ]
        )
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert len({p1, p2}) == 1

    def test_duplicate_attribute_op_rejected(self):
        with pytest.raises(ValueError):
            Pattern(
                [
                    PatternPredicate("a", OP_EQ, 1),
                    PatternPredicate("a", OP_EQ, 2),
                ]
            )

    def test_both_bounds_on_same_attribute_allowed(self, columns):
        pattern = Pattern(
            [
                PatternPredicate("pts", OP_GE, 10),
                PatternPredicate("pts", OP_LE, 25),
            ]
        )
        assert pattern.match_mask(columns).tolist() == [
            False, True, False, True, False,
        ]

    def test_refined_adds_predicate(self):
        base = Pattern([PatternPredicate("a", OP_EQ, "x")])
        refined = base.refined("b", OP_GE, 5)
        assert refined.size == 2
        assert refined.is_refinement_of(base)
        assert not base.is_refinement_of(refined)
        assert base.size == 1  # immutability

    def test_pattern_is_immutable(self):
        pattern = Pattern()
        with pytest.raises(AttributeError):
            pattern.predicates = ()

    def test_from_dict(self):
        pattern = Pattern.from_dict({"pts": (OP_GE, 23), "p": (OP_EQ, "C")})
        assert pattern.uses("pts")
        assert pattern.value_of("p") == "C"

    def test_value_of_missing_raises(self):
        with pytest.raises(KeyError):
            Pattern().value_of("zzz")

    def test_missing_column_raises(self, columns):
        pattern = Pattern([PatternPredicate("nope", OP_EQ, 1)])
        with pytest.raises(KeyError):
            pattern.match_mask(columns)

    def test_num_numeric_predicates(self):
        pattern = Pattern.from_dict(
            {"pts": (OP_GE, 23), "player": (OP_EQ, "C")}
        )
        assert pattern.num_numeric_predicates({"pts"}) == 1
        assert pattern.num_numeric_predicates(set()) == 0

    def test_describe_sorted(self):
        pattern = Pattern.from_dict(
            {"b": (OP_LE, 2), "a": (OP_EQ, "x")}
        )
        assert pattern.describe() == "a=x ∧ b<=2"

    def test_empty_describe(self):
        assert Pattern().describe() == "(*)"


class TestRefinementMonotonicity:
    """Adding a predicate can only shrink the match set (Prop 3.1 core)."""

    def test_match_set_shrinks(self, columns):
        base = Pattern([PatternPredicate("player", OP_EQ, "Curry")])
        refined = base.refined("pts", OP_GE, 25)
        base_mask = base.match_mask(columns)
        refined_mask = refined.match_mask(columns)
        assert (refined_mask <= base_mask).all()
