"""Unit tests for the provenance-only explainer arm."""

import pytest

from repro import CajadeConfig, ComparisonQuestion
from repro.baselines import ProvenanceOnlyExplainer
from tests.conftest import GSW_WINS_SQL

QUESTION = ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"})


@pytest.fixture()
def explainer(mini_db) -> ProvenanceOnlyExplainer:
    config = CajadeConfig(
        top_k=5,
        f1_sample_rate=1.0,
        lca_sample_rate=1.0,
        num_selected_attrs=4,
    )
    return ProvenanceOnlyExplainer(mini_db, config)


class TestProvenanceOnly:
    def test_only_pt_join_graph(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        assert result.explanations
        for e in result.explanations:
            assert e.join_graph.num_edges == 0
            assert e.join_graph.structure() == "PT"

    def test_patterns_use_only_pt_columns(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        for e in result.explanations:
            for attr in e.pattern.attributes:
                assert attr.startswith("g.")

    def test_k_override(self, explainer):
        result = explainer.explain(GSW_WINS_SQL, QUESTION, k=2)
        assert len(result.explanations) <= 2

    def test_config_edges_forced_to_zero(self, mini_db):
        config = CajadeConfig(max_join_edges=3, f1_sample_rate=1.0)
        explainer = ProvenanceOnlyExplainer(mini_db, config)
        result = explainer.explain(GSW_WINS_SQL, QUESTION)
        assert all(e.join_graph.num_edges == 0 for e in result.explanations)

    def test_weaker_than_contextual_on_star_signal(
        self, mini_db, mini_schema_graph
    ):
        """The paper's motivating claim: context beats provenance alone
        when the distinguishing signal lives in another table."""
        from repro import CajadeExplainer

        config = CajadeConfig(
            max_join_edges=2,
            top_k=5,
            f1_sample_rate=1.0,
            lca_sample_rate=1.0,
            num_selected_attrs=4,
        )
        prov = ProvenanceOnlyExplainer(mini_db, config).explain(
            GSW_WINS_SQL, QUESTION
        )
        cajade = CajadeExplainer(mini_db, mini_schema_graph, config).explain(
            GSW_WINS_SQL, QUESTION
        )
        best_prov = max(e.f_score for e in prov.explanations)
        best_cajade = max(e.f_score for e in cajade.explanations)
        assert best_cajade >= best_prov
        # The perfect star-player pattern exists only with context.
        assert best_cajade == pytest.approx(1.0)
