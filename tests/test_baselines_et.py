"""Unit tests for the Explanation Tables baseline."""

import numpy as np
import pytest

from repro.baselines import (
    ExplanationTables,
    discretize_numeric_columns,
)


class TestDiscretization:
    def test_numeric_becomes_interval_labels(self):
        cols = {"x": np.linspace(0, 100, 50)}
        out = discretize_numeric_columns(cols, num_bins=4)
        assert out["x"].dtype == object
        assert all(v.startswith("[") for v in out["x"])
        assert len(set(out["x"])) <= 4

    def test_text_passthrough(self):
        arr = np.array(["a", "b"], dtype=object)
        out = discretize_numeric_columns({"t": arr})
        assert out["t"] is arr

    def test_nan_becomes_none(self):
        cols = {"x": np.array([1.0, np.nan, 3.0])}
        out = discretize_numeric_columns(cols)
        assert out["x"][1] is None

    def test_all_nan_column(self):
        cols = {"x": np.array([np.nan, np.nan])}
        out = discretize_numeric_columns(cols)
        assert all(v is None for v in out["x"])


class TestExplanationTables:
    def labeled_data(self, n=400):
        rng = np.random.default_rng(0)
        group = np.array(
            [rng.choice(["a", "b"]) for _ in range(n)], dtype=object
        )
        other = np.array(
            [rng.choice(["x", "y", "z"]) for _ in range(n)], dtype=object
        )
        outcome = (group == "a").astype(float)
        return {"group": group, "other": other}, outcome

    def test_finds_informative_pattern_first(self):
        cols, outcome = self.labeled_data()
        table = ExplanationTables(max_patterns=3, sample_size=40).fit(
            cols, outcome
        )
        assert table
        first = table[0]
        assert "group=" in first.pattern.describe()
        assert first.gain > 0

    def test_outcome_rates_match_data(self):
        cols, outcome = self.labeled_data()
        table = ExplanationTables(max_patterns=4, sample_size=40).fit(
            cols, outcome
        )
        for row in table:
            mask = row.pattern.match_mask(cols)
            assert row.outcome_rate == pytest.approx(
                float(outcome[mask].mean())
            )
            assert row.support == int(mask.sum())

    def test_max_patterns_respected(self):
        cols, outcome = self.labeled_data()
        table = ExplanationTables(max_patterns=2, sample_size=30).fit(
            cols, outcome
        )
        assert len(table) <= 2

    def test_numeric_input_rejected(self):
        with pytest.raises(ValueError):
            ExplanationTables().fit(
                {"x": np.arange(10).astype(float)}, np.zeros(10)
            )

    def test_deterministic(self):
        cols, outcome = self.labeled_data()
        t1 = ExplanationTables(sample_size=30, seed=4).fit(cols, outcome)
        t2 = ExplanationTables(sample_size=30, seed=4).fit(cols, outcome)
        assert [r.pattern for r in t1] == [r.pattern for r in t2]

    def test_runtime_grows_superlinearly_in_sample(self):
        """The Figure 11 shape: ET's candidate generation is quadratic."""
        import time

        rng = np.random.default_rng(1)
        n = 3000
        cols = {
            f"c{k}": np.array(
                [rng.choice(["u", "v", "w", "x"]) for _ in range(n)],
                dtype=object,
            )
            for k in range(6)
        }
        outcome = (cols["c0"] == "u").astype(float)

        def timed(size: int) -> float:
            start = time.perf_counter()
            ExplanationTables(max_patterns=5, sample_size=size).fit(
                cols, outcome
            )
            return time.perf_counter() - start

        small, large = timed(16), timed(128)
        # 8× the sample should cost clearly more than 8× (quadratic-ish);
        # allow slack for constant overheads.
        assert large > small * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplanationTables(max_patterns=0)
        with pytest.raises(ValueError):
            ExplanationTables(sample_size=1)

    def test_empty_columns(self):
        assert ExplanationTables().fit({}, np.zeros(0)) == []

    def test_describe(self):
        cols, outcome = self.labeled_data()
        table = ExplanationTables(max_patterns=1, sample_size=20).fit(
            cols, outcome
        )
        assert "support=" in table[0].describe()
