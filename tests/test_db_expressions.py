"""Unit tests for repro.db.expressions."""

import numpy as np
import pytest

from repro.db import (
    And,
    Arithmetic,
    ColumnRef,
    ColumnType,
    Comparison,
    ExecutionError,
    Literal,
    Not,
    Or,
    Relation,
    TableSchema,
    conjunction,
)
from repro.db.expressions import resolve_column


@pytest.fixture()
def rel() -> Relation:
    schema = TableSchema.build(
        "t",
        {
            "g.pts": ColumnType.INT,
            "g.team": ColumnType.TEXT,
            "p.score": ColumnType.FLOAT,
        },
    )
    return Relation.from_rows(
        schema,
        [(10, "GSW", 1.0), (20, "LAL", None), (30, "GSW", 3.0)],
    )


class TestResolveColumn:
    def test_exact(self, rel):
        assert resolve_column(rel, "g.pts") == "g.pts"

    def test_bare_suffix(self, rel):
        assert resolve_column(rel, "pts") == "g.pts"

    def test_qualified_other_alias_suffix(self, rel):
        assert resolve_column(rel, "x.team") == "g.team"

    def test_unknown_raises(self, rel):
        with pytest.raises(ExecutionError):
            resolve_column(rel, "nope")

    def test_ambiguous_raises(self):
        schema = TableSchema.build(
            "t", {"a.x": ColumnType.INT, "b.x": ColumnType.INT}
        )
        r = Relation.from_rows(schema, [(1, 2)])
        with pytest.raises(ExecutionError):
            resolve_column(r, "x")


class TestComparison:
    def test_numeric_ops(self, rel):
        pts = ColumnRef("pts")
        assert Comparison("=", pts, Literal(20)).mask(rel).tolist() == [
            False, True, False,
        ]
        assert Comparison(">=", pts, Literal(20)).mask(rel).tolist() == [
            False, True, True,
        ]
        assert Comparison("<", pts, Literal(20)).mask(rel).tolist() == [
            True, False, False,
        ]
        assert Comparison("!=", pts, Literal(20)).mask(rel).tolist() == [
            True, False, True,
        ]

    def test_text_equality(self, rel):
        mask = Comparison("=", ColumnRef("team"), Literal("GSW")).mask(rel)
        assert mask.tolist() == [True, False, True]

    def test_null_never_matches(self, rel):
        score = ColumnRef("score")
        eq = Comparison("=", score, Literal(1.0)).mask(rel)
        assert eq.tolist() == [True, False, False]
        ne = Comparison("!=", score, Literal(1.0)).mask(rel)
        # SQL: NULL != 1.0 is unknown → False
        assert ne.tolist() == [False, False, True]

    def test_column_to_column(self, rel):
        mask = Comparison(
            "<", ColumnRef("pts"), Arithmetic("*", ColumnRef("pts"), Literal(2))
        ).mask(rel)
        assert mask.all()

    def test_unknown_op_raises(self, rel):
        with pytest.raises(ExecutionError):
            Comparison("~", ColumnRef("pts"), Literal(1)).mask(rel)


class TestBooleanCombinators:
    def test_and(self, rel):
        pred = And(
            (
                Comparison("=", ColumnRef("team"), Literal("GSW")),
                Comparison(">", ColumnRef("pts"), Literal(15)),
            )
        )
        assert pred.mask(rel).tolist() == [False, False, True]

    def test_empty_and_is_true(self, rel):
        assert And(()).mask(rel).all()

    def test_or(self, rel):
        pred = Or(
            (
                Comparison("=", ColumnRef("pts"), Literal(10)),
                Comparison("=", ColumnRef("pts"), Literal(30)),
            )
        )
        assert pred.mask(rel).tolist() == [True, False, True]

    def test_empty_or_is_false(self, rel):
        assert not Or(()).mask(rel).any()

    def test_not(self, rel):
        pred = Not(Comparison("=", ColumnRef("team"), Literal("GSW")))
        assert pred.mask(rel).tolist() == [False, True, False]

    def test_conjunction_flattens(self):
        a = Comparison("=", ColumnRef("x"), Literal(1))
        b = Comparison("=", ColumnRef("y"), Literal(2))
        combined = conjunction([And((a,)), b])
        assert isinstance(combined, And)
        assert len(combined.parts) == 2

    def test_conjunction_single(self):
        a = Comparison("=", ColumnRef("x"), Literal(1))
        assert conjunction([a]) is a

    def test_referenced_columns(self):
        pred = And(
            (
                Comparison("=", ColumnRef("a"), ColumnRef("b")),
                Comparison(">", ColumnRef("c"), Literal(1)),
            )
        )
        assert pred.referenced_columns() == {"a", "b", "c"}


class TestArithmetic:
    def test_division(self, rel):
        expr = Arithmetic("/", ColumnRef("pts"), Literal(10))
        assert expr.values(rel).tolist() == [1.0, 2.0, 3.0]

    def test_addition_and_str(self, rel):
        expr = Arithmetic("+", ColumnRef("pts"), Literal(1))
        assert expr.values(rel)[0] == 11.0
        assert "+" in str(expr)

    def test_literal_str(self):
        assert str(Literal("x")) == "'x'"
        assert str(Literal(5)) == "5"
