"""Differential join-testing harness for pluggable join strategies.

Every strategy registered in :data:`repro.db.join_strategy.JOIN_STRATEGIES`
is tested against the ``hash`` reference (the shared
``join_row_indices`` core) as an oracle: over generated adversarial
relation pairs — NULL keys (``None`` → NaN-promoted ints), ``-1``
sentinel keys, float NaN, empty sides, self-joins, duplicate-heavy
domains, single-row and all-equal inputs, chained 3-way joins — the
challenger must produce the *same row-index vectors in the same order*,
the same schema, and byte-identical gathered relations.  New strategies
added to the registry are picked up by the same oracle automatically.

The module also property-tests the shared :class:`SortIndex` layer
(stability, idempotence, inheritance through rename/project/prefix,
registry dedup, rebuild-after-copy, translation semantics) and the
:class:`WindowEntry` cache value (expand round-trip, shared-byte
accounting protocol).

CI runs this file under a fixed deterministic hypothesis profile
(``HYPOTHESIS_PROFILE=ci``): derandomized, raised example count.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CajadeConfig
from repro.db import ColumnType, Relation, TableSchema
from repro.db.errors import ExecutionError
from repro.db.frame import IndexFrame
from repro.db.join_strategy import (
    JOIN_STRATEGY_NAMES,
    SortedWindowStrategy,
    WindowEntry,
    make_join_strategy,
)
from repro.db.relation import build_sort_index
from tests.test_engine import assert_relations_identical

# Deterministic raised-example profile for the CI differential step;
# the default profile stays in charge for local runs.
settings.register_profile(
    "ci", settings(max_examples=200, deadline=None, derandomize=True)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# Every registered strategy that must match the hash oracle.
CHALLENGERS = [name for name in JOIN_STRATEGY_NAMES if name != "hash"]

# Tiny domains force duplicate-heavy keys; None exercises NULL handling
# (INT columns with None are NaN-promoted to float64 at load); -1 is the
# adversarial sentinel that must never alias the encoder's NULL code.
INT_KEYS = st.one_of(st.none(), st.integers(min_value=-1, max_value=4))
TEXT_KEYS = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d"]))
FLOAT_KEYS = st.one_of(
    st.none(),
    st.just(math.nan),
    st.sampled_from([-2.0, 0.0, 1.0, 1.5, math.inf]),
)
# Mixed-dtype probes: small ints cast to float losslessly; ints beyond
# 2**53 defeat the cast and must route to the core's object path.
BIG = 2**53
MIXED_INTS = st.one_of(
    st.integers(min_value=-1, max_value=4),
    st.sampled_from([BIG + 1, BIG + 3, -BIG - 1]),
)


def _relation(name: str, cols: dict[str, ColumnType], rows) -> Relation:
    return Relation.from_rows(TableSchema.build(name, cols), rows)


def _probe_rel(keys, ctype=ColumnType.INT) -> Relation:
    return _relation(
        "p",
        {"p.k": ctype, "p.payload": ColumnType.INT},
        [(k, i) for i, k in enumerate(keys)],
    )


def _build_rel(keys, ctype=ColumnType.INT) -> Relation:
    return _relation(
        "b",
        {"b.k": ctype, "b.tag": ColumnType.INT},
        [(k, 100 + i) for i, k in enumerate(keys)],
    )


def _materialized_rows(frame: IndexFrame) -> list[np.ndarray]:
    return [
        np.arange(frame.num_rows, dtype=np.int64)
        if idx is None
        else np.asarray(idx, dtype=np.int64)
        for idx in frame.rows
    ]


def assert_join_equivalent(
    strategy_name: str,
    frame: IndexFrame,
    context: Relation,
    conditions: list[tuple[str, str]],
) -> IndexFrame:
    """The oracle: strategy result ≡ hash-core result, byte for byte.

    Checks schema, row count, per-source row-index vectors (order
    included; dtype-agnostic, since strategies may compact to int32),
    gathered relation bytes, and — when the strategy cached a
    :class:`WindowEntry` — that re-expanding the cached entry (the
    cache-hit path) reproduces the same rows.  Returns the strategy's
    result frame so callers can chain joins.
    """
    reference = frame.join(context, list(conditions))
    strategy = make_join_strategy(strategy_name)
    result, cache_value = strategy.join_frame(frame, context, list(conditions))

    assert result.column_names == reference.column_names
    assert result.num_rows == reference.num_rows
    got_rows = _materialized_rows(result)
    want_rows = _materialized_rows(reference)
    assert len(got_rows) == len(want_rows)
    for got, want in zip(got_rows, want_rows):
        assert np.array_equal(got, want)
    assert_relations_identical(result.to_relation(), reference.to_relation())

    if isinstance(cache_value, WindowEntry):
        replay = cache_value.expand()
        for got, want in zip(_materialized_rows(replay), want_rows):
            assert np.array_equal(got, want)
    return result


# ----------------------------------------------------------------------
# Generated adversarial pairs (the differential harness proper)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", CHALLENGERS)
@given(
    probe=st.lists(INT_KEYS, max_size=12),
    build=st.lists(INT_KEYS, max_size=12),
)
@settings(deadline=None)
def test_int_keys_differential(strategy, probe, build):
    assert_join_equivalent(
        strategy,
        IndexFrame.from_relation(_probe_rel(probe)),
        _build_rel(build),
        [("p.k", "b.k")],
    )


@pytest.mark.parametrize("strategy", CHALLENGERS)
@given(
    probe=st.lists(TEXT_KEYS, max_size=12),
    build=st.lists(TEXT_KEYS, max_size=12),
)
@settings(deadline=None)
def test_text_keys_differential(strategy, probe, build):
    assert_join_equivalent(
        strategy,
        IndexFrame.from_relation(_probe_rel(probe, ColumnType.TEXT)),
        _build_rel(build, ColumnType.TEXT),
        [("p.k", "b.k")],
    )


@pytest.mark.parametrize("strategy", CHALLENGERS)
@given(
    probe=st.lists(FLOAT_KEYS, max_size=12),
    build=st.lists(FLOAT_KEYS, max_size=12),
)
@settings(deadline=None)
def test_float_nan_differential(strategy, probe, build):
    assert_join_equivalent(
        strategy,
        IndexFrame.from_relation(_probe_rel(probe, ColumnType.FLOAT)),
        _build_rel(build, ColumnType.FLOAT),
        [("p.k", "b.k")],
    )


@pytest.mark.parametrize("strategy", CHALLENGERS)
@given(
    probe=st.lists(MIXED_INTS, min_size=1, max_size=12),
    build=st.lists(FLOAT_KEYS, max_size=8),
)
@settings(deadline=None)
def test_mixed_dtype_differential(strategy, probe, build):
    """int64 probe against float64 build: the float-cast guard must
    route unsafe (> 2**53) probes to the core, safely-castable ones
    through the window, and both must match the oracle."""
    assert_join_equivalent(
        strategy,
        IndexFrame.from_relation(_probe_rel(probe, ColumnType.INT)),
        _build_rel(build, ColumnType.FLOAT),
        [("p.k", "b.k")],
    )


@pytest.mark.parametrize("strategy", CHALLENGERS)
@given(keys=st.lists(TEXT_KEYS, min_size=1, max_size=8))
@settings(deadline=None)
def test_self_join_differential(strategy, keys):
    """Self-join through a duplicated probe frame: the context is a
    column-prefixed alias sharing the base table's arrays, and the
    probe side's row vectors are non-identity."""
    base = _probe_rel(keys, ColumnType.TEXT)
    context = base.prefix_columns("r_")
    n = base.num_rows
    frame = IndexFrame.from_relation(base).select(
        np.concatenate([np.arange(n), np.arange(n)])
    )
    assert_join_equivalent(strategy, frame, context, [("p.k", "r_p.k")])


@pytest.mark.parametrize("strategy", CHALLENGERS)
@given(
    probe=st.lists(
        st.tuples(INT_KEYS, TEXT_KEYS), min_size=0, max_size=10
    ),
    build1=st.lists(INT_KEYS, max_size=6),
    build2=st.lists(TEXT_KEYS, max_size=6),
)
@settings(deadline=None)
def test_chained_three_way_differential(strategy, probe, build1, build2):
    """A 3-way chain p ⋈ b1 ⋈ b2: the second step probes an already
    joined frame (composed row vectors, possibly int32-compacted)."""
    probe_rel = _relation(
        "p",
        {"p.k1": ColumnType.INT, "p.k2": ColumnType.TEXT},
        probe,
    )
    b1 = _relation(
        "b1", {"b1.k": ColumnType.INT}, [(k,) for k in build1]
    )
    b2 = _relation(
        "b2", {"b2.k": ColumnType.TEXT}, [(k,) for k in build2]
    )
    reference = (
        IndexFrame.from_relation(probe_rel)
        .join(b1, [("p.k1", "b1.k")])
        .join(b2, [("p.k2", "b2.k")])
    )
    challenger = make_join_strategy(strategy)
    step1, _ = challenger.join_frame(
        IndexFrame.from_relation(probe_rel), b1, [("p.k1", "b1.k")]
    )
    step2, _ = challenger.join_frame(step1, b2, [("p.k2", "b2.k")])
    assert step2.column_names == reference.column_names
    for got, want in zip(
        _materialized_rows(step2), _materialized_rows(reference)
    ):
        assert np.array_equal(got, want)
    assert_relations_identical(step2.to_relation(), reference.to_relation())


# ----------------------------------------------------------------------
# Explicit edge shapes (deterministic, not left to generation luck)
# ----------------------------------------------------------------------
EDGE_CASES = [
    ("empty_probe", [], [1, 2, 3]),
    ("empty_build", [1, 2, 3, 4], []),
    ("both_empty", [], []),
    ("single_row_each", [2], [2]),
    ("single_row_miss", [2], [3]),
    ("all_equal", [1, 1, 1, 1], [1, 1]),
    ("all_null", [None, None, None], [None, None]),
    ("null_vs_values", [None, 1, None, 2], [1, None]),
    ("sentinel_minus_one", [-1, 0, -1, 5], [-1, -1, 0]),
]


@pytest.mark.parametrize("strategy", CHALLENGERS)
@pytest.mark.parametrize(
    "probe,build", [(p, b) for _, p, b in EDGE_CASES],
    ids=[name for name, _, _ in EDGE_CASES],
)
def test_edge_shapes(strategy, probe, build):
    assert_join_equivalent(
        strategy,
        IndexFrame.from_relation(_probe_rel(probe)),
        _build_rel(build),
        [("p.k", "b.k")],
    )


@pytest.mark.parametrize("strategy", JOIN_STRATEGY_NAMES)
def test_error_equivalence(strategy):
    """Both strategies raise the core's errors, same type and message."""
    probe = IndexFrame.from_relation(_probe_rel([1, 2, 3]))
    build = _build_rel([1])
    challenger = make_join_strategy(strategy)
    with pytest.raises(ExecutionError, match="at least one condition"):
        challenger.join_frame(probe, build, [])
    with pytest.raises(ExecutionError, match="duplicate columns"):
        challenger.join_frame(probe, _probe_rel([9]), [("p.k", "p.k")])


# ----------------------------------------------------------------------
# Window fast path: counters, cache-entry shape, reuse accounting
# ----------------------------------------------------------------------
class TestSortedWindowPath:
    def test_fast_path_taken_and_counted(self):
        probe = _probe_rel(["a", "b", "b", None, "c", "z"], ColumnType.TEXT)
        build = _build_rel(["a", "b", "c", "d"], ColumnType.TEXT)
        strategy = SortedWindowStrategy()
        result, entry = strategy.join_frame(
            IndexFrame.from_relation(probe), build, [("p.k", "b.k")]
        )
        assert isinstance(entry, WindowEntry)
        assert strategy.stats.windows_built == 1
        assert strategy.stats.searchsorted_probes == probe.num_rows
        assert strategy.stats.fallback_joins == 0
        assert strategy.stats.permutation_reuses == 0
        # a, b, b, c each match exactly one build row; None and "z" none.
        assert result.num_rows == 4
        # Marginal bytes are the windows + probe row vectors; the
        # permutation is declared shared under the index's token.
        index = build.sort_index("b.k")
        assert entry.shared_components == ((index.token, index.nbytes),)
        assert entry.own_bytes == entry.lo.nbytes + entry.hi.nbytes + sum(
            idx.nbytes for idx in entry.rows if idx is not None
        )
        assert entry.estimated_bytes == entry.own_bytes + index.nbytes

    def test_permutation_reuse_counter(self):
        build = _build_rel(["a", "b", "c"], ColumnType.TEXT)
        strategy = SortedWindowStrategy()
        for _ in range(3):
            strategy.join_frame(
                IndexFrame.from_relation(
                    _probe_rel(["a", "a", "b", "x"], ColumnType.TEXT)
                ),
                build,
                [("p.k", "b.k")],
            )
        assert strategy.stats.windows_built == 3
        assert strategy.stats.permutation_reuses == 2

    def test_swap_rule_mirrored(self):
        """context >= probe rows: the core would build on the *probe*
        side, so the window path must decline (fallback), not reorder."""
        probe = _probe_rel(["a", "b"], ColumnType.TEXT)
        build = _build_rel(["a", "a", "b"], ColumnType.TEXT)
        strategy = SortedWindowStrategy()
        result, entry = strategy.join_frame(
            IndexFrame.from_relation(probe), build, [("p.k", "b.k")]
        )
        assert not isinstance(entry, WindowEntry)
        assert strategy.stats.fallback_joins == 1
        assert strategy.stats.windows_built == 0
        reference = IndexFrame.from_relation(probe).join(
            build, [("p.k", "b.k")]
        )
        assert_relations_identical(
            result.to_relation(), reference.to_relation()
        )

    def test_fallback_frames_compacted(self):
        probe = _probe_rel([1, 2], ColumnType.INT)
        build = _build_rel([1, 2, 2], ColumnType.INT)
        strategy = SortedWindowStrategy()
        result, _ = strategy.join_frame(
            IndexFrame.from_relation(probe), build, [("p.k", "b.k")]
        )
        assert all(
            idx is None or idx.dtype == np.int32 for idx in result.rows
        )

    def test_multi_condition_falls_back(self):
        probe = _relation(
            "p",
            {"p.a": ColumnType.INT, "p.b": ColumnType.INT},
            [(1, 1), (2, 2), (1, 2)],
        )
        build = _relation(
            "b", {"b.a": ColumnType.INT, "b.b": ColumnType.INT}, [(1, 1)]
        )
        strategy = SortedWindowStrategy()
        conditions = [("p.a", "b.a"), ("p.b", "b.b")]
        result, entry = strategy.join_frame(
            IndexFrame.from_relation(probe), build, conditions
        )
        assert not isinstance(entry, WindowEntry)
        assert strategy.stats.fallback_joins == 1
        reference = IndexFrame.from_relation(probe).join(build, conditions)
        assert_relations_identical(
            result.to_relation(), reference.to_relation()
        )


# ----------------------------------------------------------------------
# SortIndex properties
# ----------------------------------------------------------------------
class TestSortIndex:
    def test_stable_permutation_text(self):
        rel = _build_rel(
            ["b", "a", None, "b", "a", None, "c"], ColumnType.TEXT
        )
        index = rel.sort_index("b.k")
        assert index is not None
        keys = index.keys
        assert np.all(keys[:-1] <= keys[1:])  # sorted (NULL run first)
        # Stability: within every equal-key group, row order ascends.
        for code in np.unique(keys):
            group = index.perm[keys == code]
            assert np.all(group[:-1] < group[1:])
        assert index.n_valid == rel.num_rows

    def test_numeric_nan_bounds_n_valid(self):
        rel = _build_rel(
            [2.0, math.nan, 0.5, math.nan, -1.0], ColumnType.FLOAT
        )
        index = rel.sort_index("b.k")
        assert index is not None
        assert index.n_valid == 3  # two NaNs sort to the tail
        domain = index.keys[: index.n_valid]
        assert np.all(domain[:-1] <= domain[1:])
        assert not np.isnan(domain).any()
        assert np.isnan(index.keys[index.n_valid :]).all()

    def test_idempotent_per_relation(self):
        rel = _build_rel([3, 1, 2])
        assert rel.sort_index("b.k") is rel.sort_index("b.k")

    def test_inherited_through_derivations(self):
        rel = _build_rel(["x", "y", "x"], ColumnType.TEXT)
        index = rel.sort_index("b.k")
        assert rel.rename("alias").sort_index("b.k") is index
        assert rel.project(["b.k"]).sort_index("b.k") is index
        assert rel.prefix_columns("q_").sort_index("q_b.k") is index

    def test_registry_dedup_across_independent_aliases(self):
        """Aliases derived *before* any index exists still share one
        permutation: the process-wide registry keys on array identity,
        not on inheritance order."""
        rel = _build_rel(["x", "y", "x", "z"], ColumnType.TEXT)
        alias_a = rel.rename("a")
        alias_b = rel.rename("b")
        index_a = alias_a.sort_index("b.k")
        assert index_a is not None
        assert alias_b.sort_index("b.k") is index_a
        assert rel.sort_index("b.k") is index_a

    def test_rebuilt_after_array_copies(self):
        """take/concat copy their arrays, so a stale permutation must
        never be reused — a fresh (distinct-token) index is built over
        the new codes."""
        rel = _build_rel([5, 1, 4, 2])
        index = rel.sort_index("b.k")
        taken = rel.take(np.array([2, 0, 1]))
        taken_index = taken.sort_index("b.k")
        assert taken_index is not None
        assert taken_index is not index
        assert taken_index.token != index.token
        assert np.array_equal(
            taken.column("b.k")[taken_index.perm],
            np.sort(taken.column("b.k")),
        )
        doubled = rel.concat(rel)
        doubled_index = doubled.sort_index("b.k")
        assert doubled_index is not None
        assert doubled_index is not index

    def test_translation_boxed_equality_and_misses(self):
        """Translation follows the core's boxed-Python dict equality:
        1 and 1.0 share a code; None and absent values map to -1."""
        build = Relation.from_rows(
            TableSchema.build("b", {"b.k": ColumnType.TEXT}),
            [(1,), ("two",), (3.5,)],
            validate=False,
        )
        probe = Relation.from_rows(
            TableSchema.build("p", {"p.k": ColumnType.TEXT}),
            [(1.0,), ("two",), (None,), ("absent",)],
            validate=False,
        )
        index = build.sort_index("b.k")
        assert index is not None
        probe_encoding = probe.encoding("p.k")
        table = index.translation(probe_encoding)
        build_codes = table[probe_encoding.codes]
        assert build_codes[0] == index.encoding.code_of[1]  # 1.0 == 1
        assert build_codes[1] == index.encoding.code_of["two"]
        assert build_codes[2] == -1  # NULL never matches
        assert build_codes[3] == -1  # absent from the build side
        # Memoized per probe encoding.
        assert index.translation(probe_encoding) is table

    def test_unencodable_column_has_no_index(self):
        rel = Relation.from_rows(
            TableSchema.build("t", {"t.k": ColumnType.TEXT}),
            [([1, 2],), ("ok",)],  # a list defeats dictionary encoding
            validate=False,
        )
        assert rel.sort_index("t.k") is None

    def test_build_sort_index_rejects_exotic_dtypes(self):
        assert build_sort_index(np.zeros(3, dtype=np.complex128), None) is None
        assert (
            build_sort_index(np.zeros((2, 2), dtype=np.float64), None) is None
        )


# ----------------------------------------------------------------------
# Database warm-up
# ----------------------------------------------------------------------
def test_warm_join_indexes_builds_fk_endpoints(mini_db):
    warmed = mini_db.warm_join_indexes()
    assert warmed > 0
    for fk in mini_db.foreign_keys:
        for table, columns in (
            (fk.table, fk.columns),
            (fk.ref_table, fk.ref_columns),
        ):
            for column in columns:
                assert mini_db.table(table).sort_index(column) is not None
    # Idempotent: a second warm-up reuses the process-shared indexes.
    assert mini_db.warm_join_indexes() == warmed


# ----------------------------------------------------------------------
# Config ↔ registry sync
# ----------------------------------------------------------------------
def test_config_accepts_every_registered_strategy():
    for name in JOIN_STRATEGY_NAMES:
        assert CajadeConfig(join_strategy=name).join_strategy == name
        make_join_strategy(name)  # must not raise


def test_unknown_strategy_rejected_everywhere():
    with pytest.raises(ValueError, match="join.strategy|join_strategy"):
        CajadeConfig(join_strategy="bogus")
    with pytest.raises(ValueError, match="unknown join strategy"):
        make_join_strategy("bogus")
