"""Unit tests for join-graph enumeration (Algorithm 2)."""

import pytest

from repro.core import (
    CajadeConfig,
    EnumerationStats,
    SchemaGraph,
    enumerate_join_graphs,
    estimate_apt_cost,
    extend_join_graph,
    has_pk_connectivity,
    is_valid,
)
from repro.core.join_graph import JoinGraph
from repro.db import ProvenanceTable, parse_sql
from tests.conftest import GSW_WINS_SQL


@pytest.fixture()
def ctx(mini_db, mini_schema_graph):
    query = parse_sql(GSW_WINS_SQL)
    pt = ProvenanceTable.compute(query, mini_db)
    return mini_db, mini_schema_graph, query, pt


class TestExtendJoinGraph:
    def test_initial_extensions_from_pt(self, ctx):
        db, schema_graph, query, pt = ctx
        initial = JoinGraph.initial({"g": "game"})
        extensions = extend_join_graph(initial, schema_graph, query)
        # game has one schema edge (to player_game) with one condition.
        assert len(extensions) == 1
        assert extensions[0].context_nodes[0].label == "player_game"

    def test_second_level_extensions(self, ctx):
        db, schema_graph, query, pt = ctx
        initial = JoinGraph.initial({"g": "game"})
        level1 = extend_join_graph(initial, schema_graph, query)[0]
        level2 = extend_join_graph(level1, schema_graph, query)
        labels = {
            tuple(sorted(n.label for n in g.context_nodes)) for g in level2
        }
        assert ("player", "player_game") in labels


class TestValidity:
    def test_pk_connectivity_requires_player_join(self, ctx):
        db, schema_graph, query, pt = ctx
        initial = JoinGraph.initial({"g": "game"})
        only_pgs = extend_join_graph(initial, schema_graph, query)[0]
        # player_game's PK includes player_id (an FK) — unjoined → invalid.
        assert not has_pk_connectivity(only_pgs, db)
        with_player = [
            g
            for g in extend_join_graph(only_pgs, schema_graph, query)
            if len(g.context_nodes) == 2
        ]
        assert any(has_pk_connectivity(g, db) for g in with_player)

    def test_cost_estimate_positive_and_monotone(self, ctx):
        db, schema_graph, query, pt = ctx
        initial = JoinGraph.initial({"g": "game"})
        cost0 = estimate_apt_cost(initial, pt, db)
        level1 = extend_join_graph(initial, schema_graph, query)[0]
        cost1 = estimate_apt_cost(level1, pt, db)
        assert cost0 > 0
        assert cost1 > cost0

    def test_is_valid_cost_threshold(self, ctx):
        db, schema_graph, query, pt = ctx
        initial = JoinGraph.initial({"g": "game"})
        graph = extend_join_graph(initial, schema_graph, query)[0]
        graph = [
            g
            for g in extend_join_graph(graph, schema_graph, query)
            if has_pk_connectivity(g, db)
        ][0]
        ok, reason = is_valid(
            graph, pt, db, CajadeConfig(qcost_threshold=1e9)
        )
        assert ok and reason == "ok"
        ok, reason = is_valid(
            graph, pt, db, CajadeConfig(qcost_threshold=1.0)
        )
        assert not ok and reason == "cost"

    def test_pk_check_can_be_disabled(self, ctx):
        db, schema_graph, query, pt = ctx
        initial = JoinGraph.initial({"g": "game"})
        only_pgs = extend_join_graph(initial, schema_graph, query)[0]
        ok, _ = is_valid(
            only_pgs, pt, db, CajadeConfig(check_pk_connectivity=False)
        )
        assert ok


class TestEnumeration:
    def enumerate(self, ctx, **overrides) -> tuple[list, EnumerationStats]:
        db, schema_graph, query, pt = ctx
        config = CajadeConfig(**overrides)
        stats = EnumerationStats()
        graphs = list(
            enumerate_join_graphs(
                schema_graph, query, pt, db, config, stats=stats
            )
        )
        return graphs, stats

    def test_yields_initial_first(self, ctx):
        graphs, _ = self.enumerate(ctx, max_join_edges=0)
        assert len(graphs) == 1
        assert graphs[0].num_edges == 0

    def test_size_bounded_by_lambda_edges(self, ctx):
        graphs, _ = self.enumerate(ctx, max_join_edges=2)
        assert max(g.num_edges for g in graphs) <= 2

    def test_no_duplicate_signatures(self, ctx):
        graphs, _ = self.enumerate(ctx, max_join_edges=3)
        signatures = [g.signature() for g in graphs]
        assert len(signatures) == len(set(signatures))

    def test_stats_accounting(self, ctx):
        graphs, stats = self.enumerate(ctx, max_join_edges=2)
        assert stats.valid == len(graphs)
        assert (
            stats.generated
            >= stats.valid + stats.invalid_pk + stats.invalid_cost
        )

    def test_more_edges_never_fewer_graphs(self, ctx):
        one, _ = self.enumerate(ctx, max_join_edges=1)
        three, _ = self.enumerate(ctx, max_join_edges=3)
        assert len(three) >= len(one)

    def test_all_yielded_are_valid(self, ctx):
        db, schema_graph, query, pt = ctx
        graphs, _ = self.enumerate(ctx, max_join_edges=3)
        config = CajadeConfig()
        for graph in graphs[1:]:
            ok, _ = is_valid(graph, pt, db, config)
            assert ok
