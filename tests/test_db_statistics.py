"""Unit tests for catalog statistics and the cost model."""

import pytest

from repro.db import ColumnType, Relation, TableSchema
from repro.db.statistics import (
    ColumnStatistics,
    TableStatistics,
    estimate_join_cardinality,
    estimate_pipeline_cost,
    selectivity_of_equality,
)


def make_relation() -> Relation:
    schema = TableSchema.build(
        "t",
        {"a": ColumnType.INT, "b": ColumnType.TEXT, "c": ColumnType.FLOAT},
    )
    rows = [
        (1, "x", 1.0),
        (2, "x", None),
        (2, "y", 3.0),
        (3, None, 3.0),
    ]
    return Relation.from_rows(schema, rows)


class TestColumnStatistics:
    def test_numeric(self):
        stats = ColumnStatistics.collect(make_relation(), "a")
        assert stats.num_distinct == 3
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0
        assert stats.null_fraction == 0.0

    def test_numeric_with_nulls(self):
        stats = ColumnStatistics.collect(make_relation(), "c")
        assert stats.num_distinct == 2
        assert stats.null_fraction == pytest.approx(0.25)

    def test_text(self):
        stats = ColumnStatistics.collect(make_relation(), "b")
        assert stats.num_distinct == 2
        assert stats.null_fraction == pytest.approx(0.25)
        assert stats.min_value is None

    def test_empty(self):
        empty = Relation.empty(
            TableSchema.build("e", {"a": ColumnType.INT})
        )
        stats = ColumnStatistics.collect(empty, "a")
        assert stats.num_distinct == 0


class TestTableStatistics:
    def test_collect_all_columns(self):
        stats = TableStatistics.collect(make_relation())
        assert stats.num_rows == 4
        assert set(stats.columns) == {"a", "b", "c"}

    def test_distinct_accessor(self):
        stats = TableStatistics.collect(make_relation())
        assert stats.distinct("a") == 3
        # Unknown columns fall back to table size (conservative).
        assert stats.distinct("zz") == 4


class TestCardinalityEstimation:
    def test_key_fk_join(self):
        # |R|=1000 with key (1000 distinct), |S|=100 FK: expect ~100.
        estimate = estimate_join_cardinality(1000, 100, [(1000, 50)])
        assert estimate == pytest.approx(100.0)

    def test_multiple_conjuncts_reduce(self):
        single = estimate_join_cardinality(100, 100, [(10, 10)])
        double = estimate_join_cardinality(100, 100, [(10, 10), (5, 5)])
        assert double < single

    def test_never_negative(self):
        assert estimate_join_cardinality(0, 10, [(1, 1)]) == 0.0

    def test_pipeline_cost_sums(self):
        assert estimate_pipeline_cost([10.0, 20.0]) == 30.0

    def test_selectivity(self):
        assert selectivity_of_equality(4) == 0.25
        assert selectivity_of_equality(0) == 1.0
