"""Unit tests for CSV persistence."""

import pytest

from repro.db import ColumnType, Database, Relation, SchemaError, TableSchema
from repro.db.csvio import (
    load_database,
    read_relation_csv,
    save_database,
    write_relation_csv,
)


def rows_equal(a: Relation, b: Relation) -> bool:
    """Row-wise equality treating NaN as equal to NaN (NULL round-trip)."""
    import math

    rows_a, rows_b = list(a.iter_rows()), list(b.iter_rows())
    if len(rows_a) != len(rows_b):
        return False
    for ra, rb in zip(rows_a, rows_b):
        for va, vb in zip(ra, rb):
            both_nan = (
                isinstance(va, float)
                and isinstance(vb, float)
                and math.isnan(va)
                and math.isnan(vb)
            )
            if not both_nan and va != vb:
                return False
    return True


def make_relation() -> Relation:
    schema = TableSchema.build(
        "t",
        {"id": ColumnType.INT, "name": ColumnType.TEXT, "v": ColumnType.FLOAT},
        primary_key=("id",),
    )
    return Relation.from_rows(
        schema, [(1, "a", 1.5), (2, "with,comma", None), (3, None, 0.0)]
    )


class TestRelationRoundTrip:
    def test_roundtrip_with_schema(self, tmp_path):
        rel = make_relation()
        path = tmp_path / "t.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path, schema=rel.schema)
        assert rows_equal(back, rel)

    def test_roundtrip_inferred(self, tmp_path):
        rel = make_relation()
        path = tmp_path / "t.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path)
        assert back.column_type("id") == ColumnType.INT
        assert back.column_type("name") == ColumnType.TEXT
        assert back.num_rows == 3

    def test_header_mismatch_rejected(self, tmp_path):
        rel = make_relation()
        path = tmp_path / "t.csv"
        write_relation_csv(rel, path)
        other = TableSchema.build("t", {"x": ColumnType.INT})
        with pytest.raises(SchemaError):
            read_relation_csv(path, schema=other)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "games.csv"
        write_relation_csv(make_relation(), path)
        assert read_relation_csv(path).schema.name == "games"


class TestDatabaseRoundTrip:
    def test_save_load(self, tmp_path, mini_db):
        directory = tmp_path / "db"
        save_database(mini_db, directory)
        loaded = load_database(directory)
        assert loaded.table_names == mini_db.table_names
        for name in mini_db.table_names:
            original = mini_db.table(name)
            back = loaded.table(name)
            assert back.schema.primary_key == original.schema.primary_key
            assert rows_equal(back, original)
        assert len(loaded.foreign_keys) == len(mini_db.foreign_keys)

    def test_loaded_db_answers_queries(self, tmp_path, mini_db):
        directory = tmp_path / "db"
        save_database(mini_db, directory)
        loaded = load_database(directory)
        a = mini_db.sql("SELECT season, COUNT(*) AS n FROM game GROUP BY season")
        b = loaded.sql("SELECT season, COUNT(*) AS n FROM game GROUP BY season")
        assert sorted(map(tuple, a.iter_rows())) == sorted(
            map(tuple, b.iter_rows())
        )
