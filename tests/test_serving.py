"""Tests for the concurrent explanation service (repro.serving)."""

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from repro import CajadeConfig, CajadeSession, ComparisonQuestion, ExplanationRequest
from repro.serving import (
    CORRUPT,
    DELAY,
    KILL,
    QUARANTINED,
    STARTUP_CRASH,
    DeadlineExceededError,
    ExplanationService,
    FaultPlan,
    FaultRule,
    InlineBackend,
    ProcessPoolBackend,
    QueueFullError,
    Scheduler,
    ServiceError,
    ServiceOverloadedError,
    ShardQuarantinedError,
    ShardSupervisor,
    Ticket,
    WorkerDiedError,
    canonical_payload,
    locality_order,
    request_cache_key,
    request_from_json,
    serve_http,
    shard_for,
)
from repro.serving.shm import (
    attach_database,
    attached_segment_count,
    export_database,
)
from tests.conftest import GSW_WINS_SQL

QUESTION = ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"})
QUESTION2 = ComparisonQuestion({"season": "2012-13"}, {"season": "2015-16"})

CONFIG = CajadeConfig(
    max_join_edges=2,
    top_k=5,
    f1_sample_rate=1.0,
    lca_sample_rate=1.0,
    num_selected_attrs=4,
    seed=1,
)


def request() -> ExplanationRequest:
    return ExplanationRequest(GSW_WINS_SQL, QUESTION)


def serial_payload(mini_db, mini_schema_graph, req=None) -> str:
    one_shot = CajadeSession(mini_db, mini_schema_graph, CONFIG)
    return canonical_payload(one_shot.explain(req or request()))


# ---------------------------------------------------------------------------
# Sharding and batching
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_shard_for_is_deterministic(self):
        fp = ExplanationRequest(GSW_WINS_SQL, QUESTION).fingerprint
        assert all(shard_for(fp, 4) == shard_for(fp, 4) for _ in range(10))
        assert 0 <= shard_for(fp, 4) < 4
        assert shard_for(fp, 1) == 0

    def test_shard_for_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for("ab" * 16, 0)

    def test_same_fingerprint_same_queue(self):
        scheduler = Scheduler(num_shards=3)
        tickets = [
            Ticket(request=request(), key=("k", i), seq=i) for i in range(5)
        ]
        shards = {scheduler.enqueue(t) for t in tickets}
        assert len(shards) == 1

    def test_take_batch_respects_max_batch(self):
        scheduler = Scheduler(num_shards=1, max_batch=2)
        for i in range(5):
            scheduler.enqueue(
                Ticket(request=request(), key=("k", i), seq=i)
            )
        assert len(scheduler.take_batch(0)) == 2
        assert scheduler.pending(0) == 3

    def test_enqueue_bounded_by_max_queue_depth(self):
        scheduler = Scheduler(num_shards=1, max_queue_depth=2)
        for i in range(2):
            scheduler.enqueue(Ticket(request=request(), key=("k", i), seq=i))
        with pytest.raises(QueueFullError):
            scheduler.enqueue(Ticket(request=request(), key=("k", 9), seq=9))
        # The rejected ticket was not enqueued.
        assert scheduler.pending(0) == 2

    def test_locality_order_groups_by_fingerprint_then_question(self):
        sql2 = GSW_WINS_SQL + " ORDER BY win"
        reqs = [
            ExplanationRequest(GSW_WINS_SQL, QUESTION),
            ExplanationRequest(sql2, QUESTION),
            ExplanationRequest(GSW_WINS_SQL, QUESTION2),
            ExplanationRequest(GSW_WINS_SQL, QUESTION),
        ]
        tickets = [
            Ticket(request=r, key=("k", i), seq=i)
            for i, r in enumerate(reqs)
        ]
        ordered = locality_order(tickets)
        # First-seen fingerprint first, its questions grouped, then sql2.
        assert [t.seq for t in ordered] == [0, 3, 2, 1]


# ---------------------------------------------------------------------------
# Fault injection and supervision (pure units)
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_kill_every_fires_on_multiples_per_shard(self):
        plan = FaultPlan.kill_every(3)
        # Shard 0: requests 1..2 (no fire), 3..4 (fires on 3).
        assert plan.admit(0, 2) == []
        assert [r.kind for r in plan.admit(0, 2)] == [KILL]
        # Shard 1 has its own counter.
        assert plan.admit(1, 2) == []
        assert [r.kind for r in plan.admit(1, 1)] == [KILL]
        assert plan.fired_total == 2

    def test_rule_fires_at_most_once_per_batch(self):
        plan = FaultPlan.kill_every(1)
        # A 5-request batch matches ticks 1..5 but a worker dies once.
        assert len(plan.admit(0, 5)) == 1

    def test_times_caps_total_firings(self):
        plan = FaultPlan((FaultRule(kind=KILL, every=1, times=2),))
        fired = sum(len(plan.admit(0, 1)) for _ in range(5))
        assert fired == 2

    def test_shard_scoped_rule_ignores_other_shards(self):
        plan = FaultPlan((FaultRule(kind=KILL, shard=1, at=1),))
        assert plan.admit(0, 3) == []
        assert [r.kind for r in plan.admit(1, 1)] == [KILL]

    def test_startup_crash_is_pure_and_picklable(self):
        import pickle

        plan = FaultPlan((FaultRule(kind=STARTUP_CRASH, shard=0, at=2),))
        clone = pickle.loads(pickle.dumps(plan))
        for copy in (plan, clone):
            assert not copy.startup_crash(0, 1)
            assert copy.startup_crash(0, 2)
            assert not copy.startup_crash(1, 2)
        # Pure: asking twice answers the same.
        assert plan.startup_crash(0, 2)

    def test_rejects_bad_rules(self):
        with pytest.raises(ValueError):
            FaultRule(kind="nope", at=1)
        with pytest.raises(ValueError):
            FaultRule(kind=KILL)
        with pytest.raises(ValueError):
            FaultRule(kind=KILL, at=0)

    def test_describe_records_identity(self):
        plan = FaultPlan.kill_every(3, times=2, seed=7)
        plan.admit(0, 3)
        view = plan.describe()
        assert view["seed"] == 7
        assert view["fired"] == 1
        assert view["rules"][0]["every"] == 3


class TestShardSupervisor:
    def test_quarantines_after_consecutive_budget(self):
        sup = ShardSupervisor(1, max_restarts=2)
        assert sup.record_failure(0, "boom")
        sup.record_restart(0)
        assert sup.record_failure(0, "boom")
        sup.record_restart(0)
        # Third consecutive failure crosses max_restarts=2.
        assert not sup.record_failure(0, "boom")
        with pytest.raises(ShardQuarantinedError):
            sup.check(0)
        snap = sup.snapshot()
        assert snap["quarantined"] == [0]
        assert snap["restarts"] == 2
        assert snap["shards"][0]["state"] == QUARANTINED

    def test_success_resets_the_streak(self):
        sup = ShardSupervisor(1, max_restarts=1)
        for _ in range(5):  # kill/recover forever, never quarantined
            assert sup.record_failure(0, "killed")
            sup.record_restart(0)
            sup.record_success(0)
        sup.check(0)
        assert sup.consecutive_failures(0) == 0
        assert sup.restarts_total == 5

    def test_shards_are_independent(self):
        sup = ShardSupervisor(2, max_restarts=0)
        assert not sup.record_failure(1, "boom")
        sup.check(0)  # shard 0 unaffected
        with pytest.raises(ShardQuarantinedError):
            sup.check(1)


# ---------------------------------------------------------------------------
# Chaos: the failure matrix on the inline backend (no processes)
# ---------------------------------------------------------------------------


class TestChaosInline:
    def test_kill_retries_to_byte_identical_answer(
        self, mini_db, mini_schema_graph
    ):
        expected = serial_payload(mini_db, mini_schema_graph)
        plan = FaultPlan((FaultRule(kind=KILL, at=1),))

        async def main():
            backend = InlineBackend(
                mini_db, mini_schema_graph, CONFIG, fault_plan=plan
            )
            async with ExplanationService(
                backend, retry_backoff=0.01
            ) as service:
                response = await service.submit(request())
                return response, service.stats.snapshot()

        response, stats = asyncio.run(main())
        assert response.payload == expected
        assert response.source == "executed"
        assert stats["retries"] == 1
        assert stats["health"]["restarts"] == 1
        assert stats["health"]["shards"][0]["state"] == "healthy"
        assert stats["availability"] == 1.0

    def test_corrupt_reply_never_reaches_the_client(
        self, mini_db, mini_schema_graph
    ):
        expected = serial_payload(mini_db, mini_schema_graph)
        plan = FaultPlan((FaultRule(kind=CORRUPT, at=1),))

        async def main():
            backend = InlineBackend(
                mini_db, mini_schema_graph, CONFIG, fault_plan=plan
            )
            async with ExplanationService(
                backend, retry_backoff=0.01
            ) as service:
                response = await service.submit(request())
                return response, service.stats.snapshot()

        response, stats = asyncio.run(main())
        assert response.payload == expected
        assert stats["retries"] == 1
        assert stats["health"]["failures"] == 1

    def test_crash_loop_quarantines_then_degrades_inline(
        self, mini_db, mini_schema_graph
    ):
        expected = serial_payload(mini_db, mini_schema_graph)
        plan = FaultPlan((FaultRule(kind=KILL, every=1),))

        async def main():
            backend = InlineBackend(
                mini_db,
                mini_schema_graph,
                CONFIG,
                max_restarts=1,
                fault_plan=plan,
            )
            async with ExplanationService(
                backend, max_retries=5, retry_backoff=0.01
            ) as service:
                response = await service.submit(request())
                return response, service.stats.snapshot()

        response, stats = asyncio.run(main())
        assert response.source == "degraded"
        assert response.payload == expected
        assert stats["health"]["quarantined"] == [0]
        assert stats["degraded"] == 1
        assert stats["availability"] == 1.0

    def test_crash_loop_error_mode_returns_structured_503(
        self, mini_db, mini_schema_graph
    ):
        plan = FaultPlan((FaultRule(kind=KILL, every=1),))

        async def main():
            backend = InlineBackend(
                mini_db,
                mini_schema_graph,
                CONFIG,
                max_restarts=1,
                fault_plan=plan,
            )
            async with ExplanationService(
                backend,
                max_retries=5,
                retry_backoff=0.01,
                degraded_mode="error",
            ) as service:
                with pytest.raises(ShardQuarantinedError) as info:
                    await service.submit(request())
                return info.value, service.stats.snapshot()

        exc, stats = asyncio.run(main())
        assert exc.status == 503
        assert exc.kind == "quarantined"
        assert stats["health"]["quarantined"] == [0]
        assert stats["failures"] == 1

    def test_deterministic_error_is_never_retried(
        self, mini_db, mini_schema_graph
    ):
        bad = ExplanationRequest(
            "SELECT x FROM nope GROUP BY x",
            ComparisonQuestion({"x": 1}, {"x": 2}),
        )

        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                with pytest.raises(ServiceError) as info:
                    await service.submit(bad)
                return info.value, service.stats.snapshot()

        exc, stats = asyncio.run(main())
        assert not exc.retryable
        assert stats["retries"] == 0
        assert stats["failures"] == 1
        # A poison request must not poison its shard's health.
        assert stats["health"]["failures"] == 0

    def test_poison_request_does_not_fail_batchmates(
        self, mini_db, mini_schema_graph
    ):
        good = request()
        bad = ExplanationRequest(
            "SELECT x FROM nope GROUP BY x", QUESTION
        )
        expected = serial_payload(mini_db, mini_schema_graph)

        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                results = await asyncio.gather(
                    service.submit(good),
                    service.submit(bad),
                    return_exceptions=True,
                )
                return results

        ok, err = asyncio.run(main())
        assert ok.payload == expected
        assert isinstance(err, ServiceError) and not err.retryable

    def test_deadline_exceeded_is_a_504(self, mini_db, mini_schema_graph):
        plan = FaultPlan(
            (FaultRule(kind=DELAY, at=1, delay_seconds=0.4),)
        )

        async def main():
            backend = InlineBackend(
                mini_db, mini_schema_graph, CONFIG, fault_plan=plan
            )
            async with ExplanationService(backend) as service:
                with pytest.raises(DeadlineExceededError) as info:
                    await service.submit(request(), timeout=0.05)
                return info.value, service.stats.snapshot()

        exc, stats = asyncio.run(main())
        assert exc.status == 504
        assert stats["deadline_exceeded"] >= 1
        assert stats["completed"] == 0

    def test_admission_control_sheds_with_retry_after(
        self, mini_db, mini_schema_graph
    ):
        req2 = ExplanationRequest(GSW_WINS_SQL, QUESTION2)

        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(
                backend, max_in_flight=1
            ) as service:
                results = await asyncio.gather(
                    service.submit(request()),
                    service.submit(req2),
                    return_exceptions=True,
                )
                return results, service.stats.snapshot()

        (ok, shed), stats = asyncio.run(main())
        assert ok.payload  # the admitted request completed
        assert isinstance(shed, ServiceOverloadedError)
        assert shed.status == 429
        assert shed.retry_after is not None and shed.retry_after > 0
        assert stats["shed"] == 1

    def test_cache_hits_are_never_shed(self, mini_db, mini_schema_graph):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(
                backend, max_in_flight=1
            ) as service:
                await service.submit(request())
                # Saturate the backlog with a distinct request, then
                # hit the cache: the hit must not be shed.
                plan_req = ExplanationRequest(GSW_WINS_SQL, QUESTION2)
                waiter = asyncio.ensure_future(service.submit(plan_req))
                await asyncio.sleep(0)  # plan_req is now in flight
                hit = await service.submit(request())
                await waiter
                return hit

        hit = asyncio.run(main())
        assert hit.source == "cache"


# ---------------------------------------------------------------------------
# Shared memory
# ---------------------------------------------------------------------------


class TestSharedMemory:
    def test_round_trip_values_and_encodings(self, mini_db):
        export = export_database(mini_db)
        attached = attach_database(export.handle)
        try:
            for name in mini_db.table_names:
                a = mini_db.table(name)
                b = attached.database.table(name)
                assert a.num_rows == b.num_rows
                for col in a.schema.column_names:
                    ca, cb = a.column(col), b.column(col)
                    assert ca.dtype == cb.dtype
                    if ca.dtype == object:
                        assert list(ca) == list(cb)
                    else:
                        assert np.array_equal(ca, cb, equal_nan=True)
            # Encoded TEXT columns alias the shared code arrays.
            game = attached.database.table("game")
            encoding = game.encoding("winner")
            assert encoding is not None
            assert not encoding.codes.flags.writeable
            src = mini_db.table("game").encoding("winner")
            assert np.array_equal(encoding.codes, src.codes)
            assert encoding.code_of == src.code_of
        finally:
            attached.close()
            export.close()
        assert attached_segment_count() == 0

    def test_foreign_keys_survive(self, mini_db):
        export = export_database(mini_db)
        attached = attach_database(export.handle)
        try:
            assert attached.database.foreign_keys == mini_db.foreign_keys
        finally:
            attached.close()
            export.close()

    def test_export_close_unlinks_segments(self, mini_db):
        from multiprocessing import shared_memory

        export = export_database(mini_db)
        names = export.handle.segment_names
        assert names
        export.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_attach_refcounting(self, mini_db):
        export = export_database(mini_db)
        first = attach_database(export.handle)
        second = attach_database(export.handle)
        base = attached_segment_count()
        first.close()
        # Second attachment still holds every segment mapped.
        assert attached_segment_count() == base
        second.close()
        assert attached_segment_count() == 0
        export.close()

    def test_attached_session_byte_identical(
        self, mini_db, mini_schema_graph
    ):
        expected = serial_payload(mini_db, mini_schema_graph)
        export = export_database(mini_db)
        attached = attach_database(export.handle)
        try:
            session = CajadeSession(
                attached.database, mini_schema_graph, CONFIG
            )
            assert canonical_payload(session.explain(request())) == expected
        finally:
            attached.close()
            export.close()


# ---------------------------------------------------------------------------
# Front-end: cache, coalescing, fan-out
# ---------------------------------------------------------------------------


class TestExplanationService:
    def test_response_matches_serial_session(
        self, mini_db, mini_schema_graph
    ):
        expected = serial_payload(mini_db, mini_schema_graph)

        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                return await service.submit(request())

        response = asyncio.run(main())
        assert response.payload == expected
        assert response.source == "executed"

    def test_repeat_served_from_cache_byte_identical(
        self, mini_db, mini_schema_graph
    ):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                first = await service.submit(request())
                second = await service.submit(request())
                return backend, first, second

        backend, first, second = asyncio.run(main())
        assert second.source == "cache"
        assert second.payload == first.payload
        assert backend.requests_executed == 1

    def test_concurrent_identical_requests_coalesce(
        self, mini_db, mini_schema_graph
    ):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                responses = await asyncio.gather(
                    *(service.submit(request()) for _ in range(6))
                )
                return backend, service.stats.snapshot(), responses

        backend, stats, responses = asyncio.run(main())
        assert backend.requests_executed == 1
        assert len({r.payload for r in responses}) == 1
        assert stats["coalesced"] == 5
        assert sorted(r.source for r in responses) == (
            ["coalesced"] * 5 + ["executed"]
        )

    def test_distinct_questions_not_coalesced(
        self, mini_db, mini_schema_graph
    ):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                r1, r2 = await asyncio.gather(
                    service.submit(ExplanationRequest(GSW_WINS_SQL, QUESTION)),
                    service.submit(
                        ExplanationRequest(GSW_WINS_SQL, QUESTION2)
                    ),
                )
                return backend, r1, r2

        backend, r1, r2 = asyncio.run(main())
        assert backend.requests_executed == 2
        assert r1.payload != r2.payload

    def test_performance_knobs_share_cache_entry(
        self, mini_db, mini_schema_graph
    ):
        """workers= differs but the mining-config key is equal, so the
        second request is a cache hit with identical bytes."""

        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                first = await service.submit(
                    ExplanationRequest(GSW_WINS_SQL, QUESTION, workers=1)
                )
                second = await service.submit(
                    ExplanationRequest(GSW_WINS_SQL, QUESTION, workers=2)
                )
                return first, second

        first, second = asyncio.run(main())
        assert second.source == "cache"
        assert second.payload == first.payload

    def test_cache_disabled_still_correct(self, mini_db, mini_schema_graph):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(
                backend, response_cache_mb=0.0
            ) as service:
                first = await service.submit(request())
                second = await service.submit(request())
                return backend, first, second

        backend, first, second = asyncio.run(main())
        assert first.payload == second.payload
        assert second.source == "executed"
        assert backend.requests_executed == 2

    def test_sharded_backend_partitions_queries(
        self, mini_db, mini_schema_graph
    ):
        sql2 = GSW_WINS_SQL.replace("'GSW'", "'LAL'")
        req1 = ExplanationRequest(GSW_WINS_SQL, QUESTION)
        req2 = ExplanationRequest(sql2, QUESTION)
        # Pick a shard count where the two fingerprints separate.
        num_shards = next(
            n
            for n in range(2, 9)
            if shard_for(req1.fingerprint, n) != shard_for(req2.fingerprint, n)
        )

        async def main():
            backend = InlineBackend(
                mini_db, mini_schema_graph, CONFIG, num_shards=num_shards
            )
            async with ExplanationService(backend) as service:
                await asyncio.gather(
                    service.submit(req1), service.submit(req2)
                )
                # Snapshot before close() clears the per-shard sessions.
                return [
                    set(backend.session(shard)._queries)
                    for shard in range(num_shards)
                ]

        registered = asyncio.run(main())
        for req in (req1, req2):
            shard = shard_for(req.fingerprint, num_shards)
            assert req.fingerprint in registered[shard]
            for other in range(num_shards):
                if other != shard:
                    assert req.fingerprint not in registered[other]

    def test_stats_snapshot_counts(self, mini_db, mini_schema_graph):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                await service.submit(request())
                await service.submit(request())
                return service.stats.snapshot()

        stats = asyncio.run(main())
        assert stats["requests"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_hit_rate"] == pytest.approx(0.5)
        assert stats["completed"] == 2
        assert stats["batches"] == 1
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] >= 0
        assert stats["response_cache"]["entries"] == 1

    def test_submit_after_close_rejected(self, mini_db, mini_schema_graph):
        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            service = ExplanationService(backend)
            service.start()
            await service.close()
            with pytest.raises(ServiceError):
                await service.submit(request())

        asyncio.run(main())


# ---------------------------------------------------------------------------
# Worker pool (spawned processes over shared memory)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestProcessPool:
    def test_pool_survives_worker_death_byte_identically(
        self, mini_db, mini_schema_graph
    ):
        """One pool exercise: correct bytes, supervised restart after a
        SIGKILL, restart visible in stats, and no process or shm leaks."""
        expected = serial_payload(mini_db, mini_schema_graph)

        async def main(backend):
            async with ExplanationService(
                backend, retry_backoff=0.01
            ) as service:
                first = await service.submit(request())
                assert first.payload == expected
                assert first.source == "executed"
                second = await service.submit(request())
                assert second.source == "cache"

                # Kill the worker owning this fingerprint outright.
                shard = shard_for(
                    request().fingerprint, backend.num_shards
                )
                victim = backend._workers[shard].process
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=10.0)
                service._cache.clear()

                # The supervisor respawns the shard's worker against
                # the still-live shm export; the answer is the same
                # bytes as before the crash.
                third = await service.submit(request())
                assert third.payload == expected
                assert third.source == "executed"
                stats = service.stats.snapshot()
                assert stats["health"]["restarts"] == 1
                assert stats["health"]["quarantined"] == []
                assert stats["availability"] == 1.0
                replacement = backend._workers[shard].process
                assert replacement.pid != victim.pid

        backend = ProcessPoolBackend(
            mini_db, mini_schema_graph, CONFIG, num_shards=2
        )
        segment_names = backend._export.handle.segment_names
        asyncio.run(main(backend))

        # stop() ran in close(): no worker survives it, and the parent
        # still owned every segment (the killed worker shares the
        # parent's resource tracker, so its death must not have
        # unlinked anything prematurely) — after stop they are gone.
        from multiprocessing import shared_memory

        for worker in backend._workers:
            assert worker is None or not worker.process.is_alive()
        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_start_partial_failure_leaks_nothing(
        self, mini_db, mini_schema_graph
    ):
        """A worker crashing before its ready handshake fails start():
        the spawned siblings are reaped and the export is unlinked."""
        plan = FaultPlan(
            (FaultRule(kind=STARTUP_CRASH, shard=1, at=1),)
        )
        backend = ProcessPoolBackend(
            mini_db, mini_schema_graph, CONFIG, num_shards=2,
            fault_plan=plan,
        )
        segment_names = backend._export.handle.segment_names
        assert segment_names
        with pytest.raises(WorkerDiedError):
            backend.start()

        from multiprocessing import shared_memory

        for worker in backend._workers:
            assert worker is None or not worker.process.is_alive()
        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        # The torn-down pool refuses to restart rather than limp.
        with pytest.raises(ServiceError):
            backend.start()


# ---------------------------------------------------------------------------
# HTTP boundary
# ---------------------------------------------------------------------------


class TestRequestFromJson:
    def test_comparison_roundtrip(self):
        data = {
            "sql": GSW_WINS_SQL,
            "question": {
                "primary": {"season": "2015-16"},
                "secondary": {"season": "2012-13"},
            },
            "top_k": 3,
        }
        req = request_from_json(data)
        assert req.question == QUESTION
        assert req.top_k == 3
        assert req.fingerprint == request().fingerprint

    def test_outlier(self):
        req = request_from_json(
            {
                "sql": GSW_WINS_SQL,
                "question": {"target": {"season": "2015-16"}},
            }
        )
        assert req.question.target == {"season": "2015-16"}

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            request_from_json({"question": {"target": {}}})
        with pytest.raises(ValueError):
            request_from_json({"sql": GSW_WINS_SQL})
        with pytest.raises(ValueError):
            request_from_json({"sql": GSW_WINS_SQL, "question": {}})

    def test_cache_key_tracks_output_relevant_config(self):
        base = CONFIG
        r1 = ExplanationRequest(GSW_WINS_SQL, QUESTION, workers=4)
        r2 = ExplanationRequest(GSW_WINS_SQL, QUESTION)
        r3 = ExplanationRequest(GSW_WINS_SQL, QUESTION, top_k=3)
        assert request_cache_key(r1, base) == request_cache_key(r2, base)
        assert request_cache_key(r1, base) != request_cache_key(r3, base)


class TestHttp:
    def test_explain_and_stats_over_http(self, mini_db, mini_schema_graph):
        expected = serial_payload(mini_db, mini_schema_graph)
        body = json.dumps(
            {
                "sql": GSW_WINS_SQL,
                "question": {
                    "primary": {"season": "2015-16"},
                    "secondary": {"season": "2012-13"},
                },
            }
        ).encode()

        async def http_request(port, method, path, payload=b""):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            head = (
                f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + payload)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            header_blob, _, response_body = raw.partition(b"\r\n\r\n")
            status = header_blob.split(b"\r\n")[0].decode()
            headers = {}
            for line in header_blob.split(b"\r\n")[1:]:
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            return status, headers, response_body

        async def main():
            backend = InlineBackend(mini_db, mini_schema_graph, CONFIG)
            async with ExplanationService(backend) as service:
                server = await serve_http(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    one = await http_request(port, "POST", "/explain", body)
                    two = await http_request(port, "POST", "/explain", body)
                    stats = await http_request(port, "GET", "/stats")
                    missing = await http_request(port, "GET", "/nope")
                    bad = await http_request(
                        port, "POST", "/explain", b"{}"
                    )
                finally:
                    server.close()
                    await server.wait_closed()
                return one, two, stats, missing, bad

        one, two, stats, missing, bad = asyncio.run(main())
        assert one[0].startswith("HTTP/1.1 200")
        assert one[2].decode() == expected
        assert one[1]["x-cajade-source"] == "executed"
        assert two[1]["x-cajade-source"] == "cache"
        assert two[2] == one[2]
        snapshot = json.loads(stats[2])
        assert snapshot["requests"] == 2
        assert snapshot["cache_hits"] == 1
        assert "health" in snapshot
        assert missing[0].startswith("HTTP/1.1 404")
        assert bad[0].startswith("HTTP/1.1 400")
        bad_body = json.loads(bad[2])
        assert bad_body["kind"] == "bad-request"
        assert bad_body["status"] == 400
        assert bad_body["retryable"] is False

    def test_error_statuses_and_bodies_are_structured(
        self, mini_db, mini_schema_graph
    ):
        """504 on deadline, 503 on quarantine (error mode), all with
        machine-readable bodies and the fingerprint header when the
        request parsed far enough to have one."""

        async def http_request(port, method, path, payload=b""):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            head = (
                f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + payload)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            header_blob, _, response_body = raw.partition(b"\r\n\r\n")
            status = header_blob.split(b"\r\n")[0].decode()
            headers = {}
            for line in header_blob.split(b"\r\n")[1:]:
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            return status, headers, response_body

        body = {
            "sql": GSW_WINS_SQL,
            "question": {
                "primary": {"season": "2015-16"},
                "secondary": {"season": "2012-13"},
            },
        }
        slow_body = json.dumps(
            {**body, "timeout_seconds": 0.05}
        ).encode()
        plan = FaultPlan(
            (
                FaultRule(kind=DELAY, at=1, delay_seconds=0.4),
                FaultRule(kind=KILL, every=1),
            )
        )

        async def main():
            backend = InlineBackend(
                mini_db,
                mini_schema_graph,
                CONFIG,
                max_restarts=0,
                fault_plan=plan,
            )
            async with ExplanationService(
                backend,
                max_retries=3,
                retry_backoff=0.01,
                degraded_mode="error",
            ) as service:
                server = await serve_http(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    timed_out = await http_request(
                        port, "POST", "/explain", slow_body
                    )
                    quarantined = await http_request(
                        port, "POST", "/explain", json.dumps(body).encode()
                    )
                finally:
                    server.close()
                    await server.wait_closed()
                return timed_out, quarantined

        timed_out, quarantined = asyncio.run(main())
        fingerprint = request().fingerprint

        assert timed_out[0].startswith("HTTP/1.1 504")
        timed_body = json.loads(timed_out[2])
        assert timed_body["kind"] == "deadline-exceeded"
        assert timed_body["retryable"] is False
        assert timed_out[1]["x-cajade-fingerprint"] == fingerprint

        assert quarantined[0].startswith("HTTP/1.1 503")
        q_body = json.loads(quarantined[2])
        assert q_body["kind"] == "quarantined"
        assert q_body["status"] == 503
        assert q_body["retryable"] is True
        assert quarantined[1]["x-cajade-fingerprint"] == fingerprint

    def test_shed_request_gets_429_with_retry_after(
        self, mini_db, mini_schema_graph
    ):
        # The first request holds the executor for 1s; the second fills
        # the depth-1 queue; the HTTP request must then be shed.
        plan = FaultPlan(
            (FaultRule(kind=DELAY, at=1, delay_seconds=1.0),)
        )

        async def main():
            backend = InlineBackend(
                mini_db, mini_schema_graph, CONFIG, fault_plan=plan
            )
            async with ExplanationService(
                backend, max_batch=1, max_queue_depth=1
            ) as service:
                first = asyncio.ensure_future(service.submit(request()))
                await asyncio.sleep(0.2)  # batch 1 is now executing
                second = asyncio.ensure_future(
                    service.submit(
                        ExplanationRequest(GSW_WINS_SQL, QUESTION2)
                    )
                )
                await asyncio.sleep(0)  # second is now queued
                server = await serve_http(service, port=0)
                port = server.sockets[0].getsockname()[1]
                body = json.dumps(
                    {
                        "sql": GSW_WINS_SQL,
                        "question": {
                            "primary": {"season": "2015-16"},
                            "secondary": {"season": "2012-13"},
                        },
                        "top_k": 3,
                    }
                ).encode()
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    head = (
                        "POST /explain HTTP/1.1\r\nHost: t\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                    writer.write(head.encode() + body)
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                finally:
                    server.close()
                    await server.wait_closed()
                    await asyncio.gather(first, second)
                return raw

        raw = asyncio.run(main())
        header_blob, _, response_body = raw.partition(b"\r\n\r\n")
        status = header_blob.split(b"\r\n")[0].decode()
        headers = {
            line.decode().partition(":")[0].strip().lower():
            line.decode().partition(":")[2].strip()
            for line in header_blob.split(b"\r\n")[1:]
        }
        assert status.startswith("HTTP/1.1 429")
        shed_body = json.loads(response_body)
        assert shed_body["kind"] == "overloaded"
        assert shed_body["retryable"] is True
        assert shed_body["retry_after_seconds"] > 0
        assert int(headers["retry-after"]) >= 1
