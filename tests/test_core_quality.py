"""Unit tests for Definition 7 quality metrics."""

import numpy as np
import pytest

from repro.core import (
    ComparisonQuestion,
    JoinConditionSpec,
    JoinGraph,
    Pattern,
    QualityEvaluator,
    QualityStats,
    materialize_apt,
)
from repro.core.pattern import OP_EQ, OP_GE
from repro.db import ProvenanceTable, parse_sql
from tests.conftest import GSW_WINS_SQL
from tests.test_core_apt import star_join_graph


@pytest.fixture()
def setup(mini_db):
    pt = ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)
    question = ComparisonQuestion(
        {"season": "2015-16"}, {"season": "2012-13"}
    )
    resolved = question.resolve(pt)
    apt = materialize_apt(star_join_graph(), pt, mini_db)
    return apt, resolved


class TestQualityStats:
    def test_precision_recall_fscore(self):
        stats = QualityStats(tp=6, fp=2, fn=2)
        assert stats.precision == pytest.approx(0.75)
        assert stats.recall == pytest.approx(0.75)
        assert stats.f_score == pytest.approx(0.75)

    def test_zero_denominators(self):
        stats = QualityStats(tp=0, fp=0, fn=0)
        assert stats.precision == 0.0
        assert stats.recall == 0.0
        assert stats.f_score == 0.0

    def test_fscore_zero_iff_tp_zero(self):
        assert QualityStats(tp=0, fp=3, fn=2).f_score == 0.0
        assert QualityStats(tp=1, fp=100, fn=100).f_score > 0.0

    def test_bounds(self):
        stats = QualityStats(tp=3, fp=1, fn=4)
        for value in (stats.precision, stats.recall, stats.f_score):
            assert 0.0 <= value <= 1.0


class TestEvaluator:
    def test_star_player_pattern(self, setup):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        # Curry scores >= 30 in every 2015-16 win, <= 22 in 2012-13.
        pattern = Pattern.from_dict(
            {"player.player_name": (OP_EQ, "Curry"), "player_game.pts": (OP_GE, 30)}
        )
        stats = evaluator.evaluate(pattern, primary=1)
        assert stats.tp == 6
        assert stats.fp == 0
        assert stats.fn == 0
        assert stats.f_score == pytest.approx(1.0)

    def test_coverage_is_per_pt_row(self, setup):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        # Empty pattern matches every APT row, but coverage counts each
        # provenance row once despite the 3× player fanout.
        cov1, cov2 = evaluator.coverage_counts(Pattern())
        assert (cov1, cov2) == (6, 3)

    def test_primary_swap(self, setup):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        pattern = Pattern.from_dict({"player_game.pts": (OP_GE, 30)})
        s1 = evaluator.evaluate(pattern, primary=1)
        s2 = evaluator.evaluate(pattern, primary=2)
        assert s1.tp == s2.fp
        assert s1.fp == s2.tp

    def test_invalid_primary(self, setup):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        with pytest.raises(ValueError):
            evaluator.evaluate(Pattern(), primary=3)

    def test_support_exact(self, setup):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        pattern = Pattern.from_dict({"player_game.pts": (OP_GE, 30)})
        support = evaluator.support(pattern)
        assert support.total1 == 6
        assert support.total2 == 3
        assert support.covered1 == 6
        assert support.covered2 == 0
        assert "6 of 6" in support.describe()

    def test_dropped_pt_rows_count_as_fn(self, mini_db):
        # A join graph that keeps only Curry rows: pts for other players
        # vanish but the provenance rows still count in denominators.
        pt = ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)
        question = ComparisonQuestion(
            {"season": "2015-16"}, {"season": "2012-13"}
        )
        resolved = question.resolve(pt)
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        # Restrict via a pattern that matches nothing:
        evaluator = QualityEvaluator(apt, resolved.row_ids1, resolved.row_ids2)
        impossible = Pattern.from_dict({"player_game.pts": (OP_GE, 10_000)})
        stats = evaluator.evaluate(impossible, primary=1)
        assert stats.tp == 0
        assert stats.fn == 6

    def test_sampling_reduces_universe(self, setup, rng):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt,
            resolved.row_ids1,
            resolved.row_ids2,
            sample_rate=0.5,
            rng=rng,
        )
        n1, n2 = evaluator.universe_sizes
        assert n1 == 3  # half of 6
        assert n2 == 2  # round(3*0.5) = 2
        assert evaluator.full_sizes == (6, 3)

    def test_sampling_extrapolates_support(self, setup, rng):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt,
            resolved.row_ids1,
            resolved.row_ids2,
            sample_rate=0.5,
            rng=rng,
        )
        support = evaluator.support(Pattern())
        assert support.covered1 == support.total1 == 6

    def test_bad_sample_rate(self, setup):
        apt, resolved = setup
        with pytest.raises(ValueError):
            QualityEvaluator(
                apt, resolved.row_ids1, resolved.row_ids2, sample_rate=0.0
            )

    def test_side_labels_partition(self, setup):
        apt, resolved = setup
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        labels = evaluator.side_labels()
        assert set(labels.tolist()) <= {1, 2}
        assert len(labels) == evaluator.sampled_rows
