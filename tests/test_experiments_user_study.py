"""Tests for the synthetic user study (Tables 8/9 machinery)."""

import numpy as np
import pytest

from repro.experiments import (
    RaterModel,
    StudyExplanation,
    UserStudyReport,
    run_user_study,
)


def make_explanations() -> list[StudyExplanation]:
    out = []
    for i, (p, r) in enumerate(
        [(0.74, 0.38), (0.61, 1.0), (1.0, 0.23), (0.73, 0.87), (0.4, 0.4)],
        start=1,
    ):
        f = 2 * p * r / (p + r)
        out.append(
            StudyExplanation(f"Expl{i}", "provenance", f, p, r)
        )
    for j, (p, r) in enumerate(
        [(0.83, 0.81), (0.83, 1.0), (0.99, 0.99), (0.81, 0.53), (0.7, 0.07)],
        start=6,
    ):
        f = 2 * p * r / (p + r)
        out.append(
            StudyExplanation(
                f"Expl{j}", "cajade", f, p, r, controversial=(j == 8)
            )
        )
    return out


class TestRaterModel:
    def test_ratings_in_range(self):
        rater = RaterModel(expert=False, rng=np.random.default_rng(0))
        for e in make_explanations():
            assert 1.0 <= rater.rate(e) <= 5.0

    def test_better_explanations_rated_higher_on_average(self):
        good = StudyExplanation("g", "cajade", 0.95, 0.95, 0.95)
        bad = StudyExplanation("b", "cajade", 0.1, 0.1, 0.1)
        rng = np.random.default_rng(0)
        raters = [RaterModel(expert=False, rng=rng) for _ in range(30)]
        good_avg = np.mean([r.rate(good) for r in raters])
        bad_avg = np.mean([r.rate(bad) for r in raters])
        assert good_avg > bad_avg + 1.0


class TestRunUserStudy:
    @pytest.fixture()
    def report(self) -> UserStudyReport:
        return run_user_study(make_explanations(), seed=42)

    def test_shape(self, report):
        assert report.ratings.shape == (20, 10)
        assert report.expert_mask.sum() == 5

    def test_mean_ratings_keys(self, report):
        means = report.mean_ratings()
        assert set(means) == {f"Expl{i}" for i in range(1, 11)}
        assert all(1.0 <= v <= 5.0 for v in means.values())

    def test_majority_prefers_cajade(self, report):
        # Paper: 16/20 participants preferred CaJaDE.
        assert report.preference_fraction() >= 0.6

    def test_controversial_has_largest_std(self, report):
        stds = report.rating_std()
        assert max(stds, key=stds.get) == "Expl8"

    def test_ranking_quality_keys(self, report):
        out = report.ranking_quality("cajade", "f_score")
        assert set(out) == {"kendall_tau", "ndcg"}
        assert 0.0 <= out["ndcg"] <= 1.0
        assert out["kendall_tau"] >= 0.0

    def test_drop_controversial_reduces_error(self, report):
        full = report.ranking_quality("cajade", "f_score")
        dropped = report.ranking_quality(
            "cajade", "f_score", drop_most_controversial=True
        )
        assert dropped["kendall_tau"] <= full["kendall_tau"]

    def test_ndcg_high_for_fscore_ranking(self, report):
        # Paper Table 9: NDCG ≈ 0.9 for CaJaDE ranked by F-score.
        out = report.ranking_quality("cajade", "f_score")
        assert out["ndcg"] > 0.8

    def test_expert_filter(self, report):
        experts = report.mean_ratings(experts_only=True)
        non = report.mean_ratings(experts_only=False)
        # Experts rate CaJaDE explanations at least as high on average.
        cajade_keys = [f"Expl{i}" for i in range(6, 10)]
        assert np.mean([experts[k] for k in cajade_keys]) >= np.mean(
            [non[k] for k in cajade_keys]
        ) - 0.1

    def test_deterministic(self):
        a = run_user_study(make_explanations(), seed=7)
        b = run_user_study(make_explanations(), seed=7)
        assert np.allclose(a.ratings, b.ratings)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_user_study(make_explanations(), n_raters=3, n_experts=5)


class TestBuildStudyExplanations:
    def test_from_real_explanations(self, mini_db, mini_schema_graph):
        from repro import CajadeConfig, CajadeExplainer, ComparisonQuestion
        from repro.baselines import ProvenanceOnlyExplainer
        from repro.experiments import build_study_explanations
        from tests.conftest import GSW_WINS_SQL

        question = ComparisonQuestion(
            {"season": "2015-16"}, {"season": "2012-13"}
        )
        config = CajadeConfig(
            max_join_edges=2, top_k=5, f1_sample_rate=1.0,
            lca_sample_rate=1.0, num_selected_attrs=4,
        )
        prov = ProvenanceOnlyExplainer(mini_db, config).explain(
            GSW_WINS_SQL, question
        )
        caj = CajadeExplainer(mini_db, mini_schema_graph, config).explain(
            GSW_WINS_SQL, question
        )
        study = build_study_explanations(
            prov.explanations, caj.explanations
        )
        assert len(study) == len(prov.explanations[:5]) + len(
            caj.explanations[:5]
        )
        assert any(e.controversial for e in study if e.arm == "cajade")
        report = run_user_study(study, seed=1)
        assert report.ratings.shape[1] == len(study)
