"""Unit tests for numeric refinement (§3.4)."""

import numpy as np
import pytest

from repro.core import CajadeConfig, Pattern, RefinementGenerator, numeric_fragments
from repro.core.pattern import OP_EQ, OP_GE, OP_LE


class TestNumericFragments:
    def test_three_fragments_min_median_max(self):
        values = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        assert numeric_fragments(values, 3) == [0.0, 2.0, 4.0]

    def test_nan_ignored(self):
        values = np.array([np.nan, 1.0, np.nan, 3.0])
        frags = numeric_fragments(values, 3)
        assert frags[0] == 1.0 and frags[-1] == 3.0

    def test_constant_column_empty(self):
        assert numeric_fragments(np.array([5.0, 5.0]), 3) == []

    def test_empty_column(self):
        assert numeric_fragments(np.array([]), 3) == []

    def test_single_fragment_median(self):
        assert numeric_fragments(np.array([1.0, 2.0, 9.0]), 1) == []
        # single fragment on non-constant yields the lone median which is
        # then collapsed — no usable boundaries.

    def test_boundaries_sorted_unique(self):
        values = np.array([1.0] * 50 + [2.0, 3.0])
        frags = numeric_fragments(values, 5)
        assert frags == sorted(set(frags))


class TestRefinementGenerator:
    def make(self, **kwargs) -> tuple[RefinementGenerator, dict]:
        columns = {
            "pts": np.linspace(0, 40, 21),
            "minutes": np.linspace(10, 38, 21),
            "team": np.array(["a"] * 21, dtype=object),
        }
        config = CajadeConfig(**kwargs)
        gen = RefinementGenerator(columns, ["pts", "minutes"], config)
        return gen, columns

    def test_extends_by_one_numeric_predicate(self):
        gen, _ = self.make(num_fragments=3)
        base = Pattern.from_dict({"team": (OP_EQ, "a")})
        refs = gen.refinements(base)
        assert refs
        for r in refs:
            assert r.size == 2
            assert r.is_refinement_of(base)

    def test_vacuous_extremes_skipped(self):
        gen, _ = self.make(num_fragments=3)
        refs = gen.refinements(Pattern())
        for r in refs:
            for pred in r.predicates:
                if pred.op == OP_LE:
                    assert pred.value != 40.0 and pred.value != 38.0
                if pred.op == OP_GE:
                    assert pred.value != 0.0 and pred.value != 10.0

    def test_used_attribute_not_reused(self):
        gen, _ = self.make(num_fragments=3)
        base = Pattern.from_dict({"pts": (OP_GE, 20.0)})
        refs = gen.refinements(base)
        for r in refs:
            new = set(r.attributes) - set(base.attributes)
            assert new == {"minutes"}

    def test_attr_num_cap(self):
        gen, _ = self.make(num_fragments=3, max_numeric_predicates=1)
        base = Pattern.from_dict({"pts": (OP_GE, 20.0)})
        assert gen.refinements(base) == []

    def test_fragments_of_accessor(self):
        gen, _ = self.make(num_fragments=3)
        assert len(gen.fragments_of("pts")) == 3
        assert gen.fragments_of("unknown") == []

    def test_more_fragments_more_refinements(self):
        gen3, _ = self.make(num_fragments=3)
        gen5, _ = self.make(num_fragments=5)
        assert len(gen5.refinements(Pattern())) > len(
            gen3.refinements(Pattern())
        )
