"""Integration tests: the full pipeline on generated datasets.

These run the actual workload queries end to end at small scale and
assert the *shape* of the paper's qualitative findings (Tables 4/6).
"""

import pytest

from repro import CajadeConfig, CajadeExplainer
from repro.datasets import query_by_name, user_study_query

CONFIG = CajadeConfig(
    max_join_edges=2,
    top_k=8,
    f1_sample_rate=0.5,
    num_selected_attrs=4,
    seed=3,
)


class TestNbaIntegration:
    def test_uq1_produces_contextual_explanations(self, nba_small):
        db, sg = nba_small
        wq = user_study_query()
        result = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        assert result.explanations
        contextual = [
            e for e in result.explanations if e.join_graph.num_edges > 0
        ]
        assert contextual, "context tables must contribute explanations"

    def test_qnba1_salary_or_stats_signal(self, nba_small):
        db, sg = nba_small
        wq = query_by_name("Qnba1")
        result = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        assert result.explanations
        used = set()
        for e in result.explanations[:5]:
            used |= {a.split(".")[-1] for a in e.pattern.attributes}
        # Paper Table 4 Qnba1: salary / tspct / usage / minutes patterns.
        assert used & {"salary", "tspct", "usage", "minutes", "points"}

    def test_explanations_are_scored_and_supported(self, nba_small):
        db, sg = nba_small
        wq = query_by_name("Qnba4")
        result = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        for e in result.explanations:
            assert 0.0 < e.f_score <= 1.0
            assert e.support.covered1 <= e.support.total1
            assert e.support.covered2 <= e.support.total2


class TestMimicIntegration:
    def test_qmimic2_emergency_signal(self, mimic_small):
        db, sg = mimic_small
        wq = query_by_name("Qmimic2")
        result = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        assert result.explanations
        top_descriptions = " ".join(
            e.pattern.describe() for e in result.explanations[:5]
        )
        # Paper Table 6 Qmimic2 top-1: admission_type=emergency [Medicare].
        assert "EMERGENCY" in top_descriptions or "age" in top_descriptions

    def test_qmimic3_stay_length_signal(self, mimic_small):
        db, sg = mimic_small
        wq = query_by_name("Qmimic3")
        result = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        assert result.explanations
        used = set()
        for e in result.explanations[:5]:
            used |= {a.split(".")[-1] for a in e.pattern.attributes}
        assert "hospital_stay_length" in used or "los" in used

    def test_single_table_query_still_augments(self, mimic_small):
        db, sg = mimic_small
        wq = query_by_name("Qmimic4")
        result = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        contextual = [
            e for e in result.explanations if e.join_graph.num_edges > 0
        ]
        assert contextual


class TestCrossCutting:
    def test_all_ten_queries_run(self, nba_small, mimic_small):
        fast = CONFIG.with_overrides(max_join_edges=1, top_k=3)
        from repro.datasets import all_queries

        for wq in all_queries():
            db, sg = nba_small if wq.dataset == "nba" else mimic_small
            result = CajadeExplainer(db, sg, fast).explain(
                wq.sql, wq.question
            )
            assert result.explanations, f"{wq.name} produced nothing"

    def test_results_deterministic_across_processes(self, nba_small):
        db, sg = nba_small
        wq = query_by_name("Qnba4")
        r1 = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        r2 = CajadeExplainer(db, sg, CONFIG).explain(wq.sql, wq.question)
        assert [e.pattern for e in r1.explanations] == [
            e.pattern for e in r2.explanations
        ]

    def test_cost_threshold_prunes(self, nba_small):
        db, sg = nba_small
        wq = query_by_name("Qnba4")
        tight = CONFIG.with_overrides(qcost_threshold=5000.0)
        loose = CONFIG.with_overrides(qcost_threshold=1e9)
        r_tight = CajadeExplainer(db, sg, tight).explain(wq.sql, wq.question)
        r_loose = CajadeExplainer(db, sg, loose).explain(wq.sql, wq.question)
        assert (
            r_tight.enumeration.invalid_cost
            > r_loose.enumeration.invalid_cost
        )
        assert r_tight.enumeration.valid < r_loose.enumeration.valid
