"""Unit tests for the random forest."""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier


class TestRandomForest:
    def test_importance_ranks_informative_features(self, rng):
        n = 1500
        informative = rng.normal(size=n)
        noise = rng.normal(size=(n, 3))
        x = np.column_stack([noise[:, 0], informative, noise[:, 1], noise[:, 2]])
        y = (informative > 0).astype(float)
        forest = RandomForestClassifier(n_estimators=10, random_state=1).fit(x, y)
        assert np.argmax(forest.feature_importances_) == 1
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_accuracy_on_learnable_task(self, rng):
        x = rng.normal(size=(800, 3))
        y = ((x[:, 0] + x[:, 1]) > 0).astype(float)
        forest = RandomForestClassifier(n_estimators=12, random_state=2).fit(x, y)
        assert forest.accuracy(x, y) > 0.9

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(300, 3))
        y = (x[:, 0] > 0).astype(float)
        f1 = RandomForestClassifier(n_estimators=5, random_state=7).fit(x, y)
        f2 = RandomForestClassifier(n_estimators=5, random_state=7).fit(x, y)
        assert np.allclose(f1.feature_importances_, f2.feature_importances_)
        assert np.allclose(f1.predict_proba(x), f2.predict_proba(x))

    def test_different_seeds_differ(self, rng):
        x = rng.normal(size=(300, 5))
        y = (x[:, 0] + 0.5 * rng.normal(size=300) > 0).astype(float)
        f1 = RandomForestClassifier(n_estimators=5, random_state=1).fit(x, y)
        f2 = RandomForestClassifier(n_estimators=5, random_state=2).fit(x, y)
        assert not np.allclose(f1.predict_proba(x), f2.predict_proba(x))

    def test_max_samples_caps_bootstrap(self, rng):
        x = rng.normal(size=(5000, 2))
        y = (x[:, 0] > 0).astype(float)
        forest = RandomForestClassifier(
            n_estimators=3, max_samples=100, random_state=0
        ).fit(x, y)
        assert forest.accuracy(x, y) > 0.8

    def test_max_features_int(self, rng):
        x = rng.normal(size=(200, 4))
        y = (x[:, 0] > 0).astype(float)
        forest = RandomForestClassifier(
            n_estimators=3, max_features=2, random_state=0
        ).fit(x, y)
        assert len(forest.trees_) == 3

    def test_bad_max_features(self, rng):
        x = rng.normal(size=(50, 2))
        y = (x[:, 0] > 0).astype(float)
        forest = RandomForestClassifier(max_features=0.5)  # type: ignore
        with pytest.raises(ValueError):
            forest.fit(x, y)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))
