"""Tests for the session-oriented public API (repro.api)."""

import json

import pytest

from repro import (
    CajadeConfig,
    CajadeSession,
    ComparisonQuestion,
    ExplanationRequest,
    OutlierQuestion,
    query_fingerprint,
)
from repro.core.timing import APT_CACHE_HITS, APT_CACHE_MISSES, StepTimer
from tests.conftest import GSW_WINS_SQL

QUESTION = ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"})
OUTLIER = OutlierQuestion({"season": "2015-16"})

CONFIG = CajadeConfig(
    max_join_edges=2,
    top_k=5,
    f1_sample_rate=1.0,
    lca_sample_rate=1.0,
    num_selected_attrs=4,
    seed=1,
)


def ranked_payload(result) -> str:
    """User-visible output minus cache counters (differ by warmth)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture()
def session(mini_db, mini_schema_graph) -> CajadeSession:
    return CajadeSession(mini_db, mini_schema_graph, CONFIG)


def cold_payload(mini_db, mini_schema_graph, question, **knobs) -> str:
    """One-shot result from a fresh single-request session."""
    one_shot = CajadeSession(mini_db, mini_schema_graph, CONFIG)
    return ranked_payload(one_shot.explain(GSW_WINS_SQL, question, **knobs))


class TestSessionBasics:
    def test_returns_ranked_explanations(self, session):
        response = session.explain(GSW_WINS_SQL, QUESTION)
        assert response.explanations
        assert len(response.explanations) <= 5
        assert not response.warm_query
        assert response.fingerprint == query_fingerprint(GSW_WINS_SQL)
        assert response.total_seconds > 0

    def test_request_object_roundtrip(self, session):
        request = ExplanationRequest(GSW_WINS_SQL, QUESTION, top_k=2)
        response = session.explain(request)
        assert response.request is request
        assert len(response.explanations) <= 2

    def test_sql_and_request_both_given_rejected(self, session):
        request = ExplanationRequest(GSW_WINS_SQL, QUESTION)
        with pytest.raises(TypeError):
            session.explain(request, QUESTION)

    def test_sql_without_question_rejected(self, session):
        with pytest.raises(TypeError):
            session.explain(GSW_WINS_SQL)

    def test_timer_passed_in_is_used(self, session):
        timer = StepTimer()
        session.explain(GSW_WINS_SQL, QUESTION, timer=timer)
        assert timer.total > 0
        assert "Materialize APTs" in timer.breakdown()

    def test_context_manager(self, mini_db, mini_schema_graph):
        with CajadeSession(mini_db, mini_schema_graph, CONFIG) as session:
            session.explain(GSW_WINS_SQL, QUESTION)
            assert session.registered_queries
        assert not session.registered_queries  # close() drops state


class TestCrossQuestionReuse:
    """The tentpole guarantees: warm reuse, byte-identical results."""

    def test_second_explain_grows_cache_hits(self, session):
        first = session.explain(GSW_WINS_SQL, QUESTION)
        second = session.explain(GSW_WINS_SQL, QUESTION)
        # The warm request serves every materialization step from the
        # trie: per-request APT_CACHE_HITS grows past the cold run's,
        # and nothing is recomputed.
        assert second.engine.steps_reused > first.engine.steps_reused
        assert second.engine.steps_computed == 0
        # Every graph with at least one plan step is a full-plan hit
        # (Ω0's empty plan never counts as one).
        assert second.engine.full_hits == second.engine.graphs - 1
        assert second.timer.counter(APT_CACHE_HITS) > 0
        assert second.timer.counter(APT_CACHE_MISSES) == 0
        assert second.warm_query
        assert second.mined_graphs_reused == second.join_graphs_mined

    def test_warm_responses_byte_identical_serial(
        self, session, mini_db, mini_schema_graph
    ):
        cold = cold_payload(mini_db, mini_schema_graph, QUESTION)
        session.explain(GSW_WINS_SQL, QUESTION)
        warm = session.explain(GSW_WINS_SQL, QUESTION)
        assert ranked_payload(warm) == cold

    def test_warm_responses_byte_identical_parallel(
        self, session, mini_db, mini_schema_graph
    ):
        cold = cold_payload(mini_db, mini_schema_graph, QUESTION)
        session.explain(GSW_WINS_SQL, QUESTION)
        warm = session.explain(GSW_WINS_SQL, QUESTION, workers=3)
        assert ranked_payload(warm) == cold

    def test_different_question_same_query_reuses_state(self, session):
        session.explain(GSW_WINS_SQL, QUESTION)
        response = session.explain(GSW_WINS_SQL, OUTLIER)
        assert response.warm_query
        stats = session.stats
        assert stats.queries_registered == 1
        assert stats.query_state_hits == 1
        assert stats.enumeration_hits == 1

    def test_different_question_byte_identical_to_cold(
        self, session, mini_db, mini_schema_graph
    ):
        cold = cold_payload(mini_db, mini_schema_graph, OUTLIER)
        session.explain(GSW_WINS_SQL, QUESTION)  # warm with another question
        warm = session.explain(GSW_WINS_SQL, OUTLIER)
        assert ranked_payload(warm) == cold

    def test_swapped_question_sides_not_aliased(self, session):
        """t1/t2 swapped shares the restriction union but must not hit
        the other direction's mining memo."""
        forward = session.explain(GSW_WINS_SQL, QUESTION)
        swapped = session.explain(
            GSW_WINS_SQL,
            ComparisonQuestion(QUESTION.secondary, QUESTION.primary),
        )
        assert swapped.mined_graphs_reused == 0
        assert ranked_payload(forward) != ranked_payload(swapped)

    def test_mining_memo_disabled(self, mini_db, mini_schema_graph):
        session = CajadeSession(
            mini_db, mini_schema_graph, CONFIG, max_cached_minings=0
        )
        session.explain(GSW_WINS_SQL, QUESTION)
        second = session.explain(GSW_WINS_SQL, QUESTION)
        assert second.mined_graphs_reused == 0
        assert second.engine.steps_computed == 0  # trie still warm

    def test_query_state_lru_eviction(self, mini_db, mini_schema_graph):
        session = CajadeSession(
            mini_db, mini_schema_graph, CONFIG, max_cached_queries=1
        )
        session.explain(GSW_WINS_SQL, QUESTION)
        other_sql = GSW_WINS_SQL.replace(
            "COUNT(*) AS win", "COUNT(*) AS total"
        )
        session.explain(other_sql, QUESTION)
        response = session.explain(GSW_WINS_SQL, QUESTION)
        assert not response.warm_query  # evicted, recomputed
        assert session.stats.queries_evicted >= 2


class TestHistForestKnob:
    """`use_hist_forest` is mining-neutral: the histogram learner is a
    bitwise twin of the reference forest, so ranked output is
    byte-identical with the knob on or off, serial or parallel."""

    def test_knob_off_byte_identical(self, mini_db, mini_schema_graph):
        on = cold_payload(mini_db, mini_schema_graph, QUESTION)
        off = cold_payload(
            mini_db, mini_schema_graph, QUESTION,
            overrides={"use_hist_forest": False},
        )
        assert on == off

    def test_knob_identical_across_workers(
        self, mini_db, mini_schema_graph
    ):
        serial = cold_payload(mini_db, mini_schema_graph, QUESTION)
        parallel_on = cold_payload(
            mini_db, mini_schema_graph, QUESTION, workers=4
        )
        parallel_off = cold_payload(
            mini_db, mini_schema_graph, QUESTION,
            overrides={"use_hist_forest": False}, workers=4,
        )
        assert serial == parallel_on == parallel_off


class TestFingerprints:
    def test_whitespace_insensitive(self):
        spaced = GSW_WINS_SQL.replace(" ", "  ").replace(",", ", ")
        assert query_fingerprint(spaced) == query_fingerprint(GSW_WINS_SQL)

    def test_query_objects_supported(self, session):
        from repro.db import parse_sql

        query = parse_sql(GSW_WINS_SQL)
        response = session.explain(query, QUESTION)
        assert response.explanations
        # The parsed query carries its original text, so string and
        # Query forms share one session slot.
        followup = session.explain(GSW_WINS_SQL, QUESTION)
        assert followup.warm_query

    def test_register_is_idempotent(self, session):
        fp1 = session.register(GSW_WINS_SQL)
        fp2 = session.register(GSW_WINS_SQL)
        assert fp1 == fp2
        assert session.registered_queries == [fp1]
        assert session.engine_stats(GSW_WINS_SQL) is not None
        assert session.engine_stats("SELECT 1 AS x FROM game g") is None


class TestRequestValidation:
    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown CajadeConfig"):
            ExplanationRequest(
                GSW_WINS_SQL, QUESTION, overrides={"not_a_knob": 1}
            )

    def test_session_level_override_rejected(self):
        with pytest.raises(ValueError, match="session-level"):
            ExplanationRequest(
                GSW_WINS_SQL, QUESTION, overrides={"apt_cache_mb": 0.0}
            )

    def test_bad_question_type_rejected(self):
        with pytest.raises(TypeError):
            ExplanationRequest(GSW_WINS_SQL, {"season": "2015-16"})

    def test_config_for_merges_knobs(self):
        request = ExplanationRequest(
            GSW_WINS_SQL,
            QUESTION,
            top_k=3,
            workers=2,
            overrides={"seed": 99},
        )
        config = request.config_for(CONFIG)
        assert config.top_k == 3
        assert config.workers == 2
        assert config.seed == 99
        assert config.max_join_edges == CONFIG.max_join_edges
        assert CONFIG.top_k == 5  # base untouched

    def test_describe_mentions_knobs(self):
        request = ExplanationRequest(GSW_WINS_SQL, QUESTION, top_k=3)
        assert "top_k=3" in request.describe()
        assert "2015-16" in request.describe()


class TestQuestionBuilder:
    def test_fluent_chain_matches_direct_request(self, session):
        direct = session.explain(
            ExplanationRequest(GSW_WINS_SQL, QUESTION, top_k=3)
        )
        fluent = (
            session.ask(GSW_WINS_SQL)
            .why_higher(QUESTION.primary, QUESTION.secondary)
            .top_k(3)
            .run()
        )
        assert ranked_payload(fluent) == ranked_payload(direct)

    def test_outlier_and_knobs(self, session):
        response = (
            session.ask(GSW_WINS_SQL)
            .outlier({"season": "2015-16"})
            .edges(1)
            .f1_sample(1.0)
            .workers(2)
            .override(seed=5)
            .run()
        )
        assert response.explanations
        request = response.request
        assert request.max_join_edges == 1
        assert request.workers == 2
        assert dict(request.overrides) == {"seed": 5}

    def test_build_without_question_raises(self, session):
        with pytest.raises(ValueError, match="no question"):
            session.ask(GSW_WINS_SQL).top_k(3).build()

    def test_why_lower_is_comparison(self, session):
        request = (
            session.ask(GSW_WINS_SQL)
            .why_lower(QUESTION.secondary, QUESTION.primary)
            .build()
        )
        assert isinstance(request.question, ComparisonQuestion)
        assert request.question.primary == QUESTION.secondary


class TestExplainBatch:
    def test_responses_in_input_order(self, session):
        requests = [
            ExplanationRequest(GSW_WINS_SQL, OUTLIER),
            ExplanationRequest(GSW_WINS_SQL, QUESTION),
            ExplanationRequest(GSW_WINS_SQL, QUESTION, top_k=2),
        ]
        responses = session.explain_batch(requests)
        assert [r.request for r in responses] == requests
        assert session.stats.batches == 1

    def test_batch_matches_one_shot(self, session, mini_db, mini_schema_graph):
        cold = cold_payload(mini_db, mini_schema_graph, QUESTION)
        responses = session.explain_batch(
            [
                ExplanationRequest(GSW_WINS_SQL, QUESTION),
                ExplanationRequest(GSW_WINS_SQL, QUESTION, workers=2),
            ]
        )
        assert ranked_payload(responses[0]) == cold
        assert ranked_payload(responses[1]) == cold

    def test_batch_repeats_hit_warm_state(self, session):
        first = session.explain_batch(
            [ExplanationRequest(GSW_WINS_SQL, QUESTION)]
        )
        second = session.explain_batch(
            [ExplanationRequest(GSW_WINS_SQL, QUESTION)]
        )
        assert second[0].mined_graphs_reused > 0
        assert second[0].engine.steps_computed == 0
        assert ranked_payload(second[0]) == ranked_payload(first[0])

    def test_duplicates_computed_once_and_fanned_out(self, session):
        requests = [
            ExplanationRequest(GSW_WINS_SQL, QUESTION),
            ExplanationRequest(GSW_WINS_SQL, OUTLIER),
            ExplanationRequest(GSW_WINS_SQL, QUESTION),
            # workers never changes output, so it joins the group.
            ExplanationRequest(GSW_WINS_SQL, QUESTION, workers=2),
        ]
        responses = session.explain_batch(requests)
        assert responses[2] is responses[0]
        assert responses[3] is responses[0]
        assert responses[1] is not responses[0]
        assert session.stats.requests_deduped == 2
        assert session.stats.requests == 2  # only two executions

    def test_output_relevant_knobs_are_not_deduped(self, session):
        responses = session.explain_batch(
            [
                ExplanationRequest(GSW_WINS_SQL, QUESTION),
                ExplanationRequest(GSW_WINS_SQL, QUESTION, top_k=2),
            ]
        )
        assert responses[1] is not responses[0]
        assert session.stats.requests_deduped == 0
        assert len(responses[1].explanations) <= 2


class TestDeprecatedShim:
    def test_explainer_warns_and_matches_session(
        self, mini_db, mini_schema_graph
    ):
        from repro import CajadeExplainer

        with pytest.warns(DeprecationWarning, match="CajadeSession"):
            explainer = CajadeExplainer(mini_db, mini_schema_graph, CONFIG)
        old = explainer.explain(GSW_WINS_SQL, QUESTION)
        new = CajadeSession(mini_db, mini_schema_graph, CONFIG).explain(
            GSW_WINS_SQL, QUESTION
        )
        assert ranked_payload(old) == ranked_payload(new)

    def test_no_internal_deprecated_callers(self):
        """repro's own modules must not construct CajadeExplainer (the
        pyproject filter would turn their warning into an error; this
        asserts the source level too)."""
        import pathlib

        import repro

        package_root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in package_root.rglob("*.py"):
            text = path.read_text()
            if "CajadeExplainer(" in text and path.name != "explainer.py":
                offenders.append(str(path))
        assert not offenders
