"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, gini_impurity


class TestGini:
    def test_pure_is_zero(self):
        assert gini_impurity(0.0) == 0.0
        assert gini_impurity(1.0) == 0.0

    def test_max_at_half(self):
        assert gini_impurity(0.5) == pytest.approx(0.5)

    def test_symmetric(self):
        assert gini_impurity(0.3) == pytest.approx(gini_impurity(0.7))


class TestDecisionTree:
    def test_learns_threshold(self, rng):
        x = rng.normal(size=(500, 1))
        y = (x[:, 0] > 0.3).astype(float)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        acc = (tree.predict(x) == y).mean()
        assert acc > 0.95

    def test_learns_xor_with_depth(self, rng):
        x = rng.uniform(-1, 1, size=(800, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
        tree = DecisionTreeClassifier(max_depth=4, min_samples_split=4).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.9

    def test_constant_labels_are_leaf(self, rng):
        x = rng.normal(size=(50, 2))
        y = np.ones(50)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.depth == 0
        assert (tree.predict_proba(x) == 1.0).all()

    def test_importances_sum_to_one_or_zero(self, rng):
        x = rng.normal(size=(200, 3))
        y = (x[:, 1] > 0).astype(float)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.feature_importances_ is not None
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(tree.feature_importances_) == 1

    def test_respects_max_depth(self, rng):
        x = rng.normal(size=(500, 4))
        y = (x.sum(axis=1) > 0).astype(float)
        tree = DecisionTreeClassifier(max_depth=2, min_samples_split=2).fit(x, y)
        assert tree.depth <= 2

    def test_min_samples_split(self, rng):
        x = rng.normal(size=(8, 1))
        y = (x[:, 0] > 0).astype(float)
        tree = DecisionTreeClassifier(min_samples_split=100).fit(x, y)
        assert tree.depth == 0

    def test_validation(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            tree.fit(np.zeros(3), np.zeros(3))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_nan_features_tolerated(self, rng):
        x = rng.normal(size=(100, 2))
        x[::7, 0] = np.nan
        y = (x[:, 1] > 0).astype(float)
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.8

    def test_probabilities_in_unit_interval(self, rng):
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] + 0.4 * rng.normal(size=300) > 0).astype(float)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        probs = tree.predict_proba(x)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_importances_golden(self):
        """Pins the split arithmetic bit-for-bit.  The quantile grid
        and positive-count totals are hoisted out of the per-feature
        loop in `_best_split`; this golden locks in that the hoist (or
        any future micro-optimisation) never shifts a split."""
        rng = np.random.default_rng(42)
        x = rng.normal(size=(300, 4))
        x[::9, 2] = np.nan
        y = ((x[:, 0] + 0.5 * x[:, 1]) > 0).astype(float)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert tree.feature_importances_.tolist() == [
            0.6877909747339919,
            0.3122090252660081,
            0.0,
            0.0,
        ]

    def test_vectorized_predict_proba_matches_traversal(self, rng):
        """The batched predict_proba must route rows exactly as a
        one-row-at-a-time walk of the tree would (NaN goes right)."""
        x = rng.normal(size=(400, 3))
        x[::5, 1] = np.nan
        y = (np.nan_to_num(x[:, 1]) + x[:, 0] > 0).astype(float)
        tree = DecisionTreeClassifier(max_depth=5).fit(x, y)

        def walk(node, row):
            while node.feature is not None:
                value = row[node.feature]
                go_left = value <= node.threshold  # False for NaN
                node = node.left if go_left else node.right
            return node.prediction

        expected = np.array([walk(tree._root, row) for row in x])
        assert np.array_equal(tree.predict_proba(x), expected)
