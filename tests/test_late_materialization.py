"""Late-materialized storage engine: byte-identity and cache-shape tests.

Covers the ISSUE-5 guarantees:

- index-vector joins ≡ eager joins (hypothesis: NULL join keys, empty
  results, self-joins, multi-column keys);
- gather-built kernel codes ≡ per-APT re-encoded codes (masks,
  coverage, ml codes);
- full-pipeline byte-identity with ``late_materialization`` on/off,
  serial and ``workers=4`` (including λF1-samp sampled evaluation);
- the trie caches index-vector frames whose median entry size is
  smaller than the eager relations at the same ``apt_cache_mb``;
- vectorized ``Relation.distinct`` / primary-key duplicate detection /
  ``row_ids_excluding`` match their per-row reference semantics.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apt import build_plan, materialize_apt
from repro.core.config import CajadeConfig
from repro.core.enumeration import enumerate_join_graphs
from repro.core.pattern import OP_EQ, Pattern, PatternPredicate
from repro.core.quality import QualityEvaluator
from repro.core.schema_graph import SchemaGraph
from repro.db import ColumnType, Database, Relation, TableSchema
from repro.db.errors import IntegrityError
from repro.db.executor import hash_join
from repro.db.frame import IndexFrame
from repro.db.parser import parse_sql
from repro.db.provenance import ProvenanceTable
from repro.engine import MaterializationEngine
from tests.conftest import GSW_WINS_SQL
from tests.test_engine import assert_relations_identical


# ----------------------------------------------------------------------
# Index-vector join ≡ eager join
# ----------------------------------------------------------------------
KEYS = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
TEXT_KEYS = st.one_of(st.none(), st.sampled_from(["a", "b", "c"]))


def _left_relation(rows: list[tuple]) -> Relation:
    schema = TableSchema.build(
        "left",
        {
            "left.k1": ColumnType.INT,
            "left.k2": ColumnType.TEXT,
            "left.payload": ColumnType.INT,
        },
    )
    return Relation.from_rows(
        schema, [(k1, k2, i) for i, (k1, k2) in enumerate(rows)]
    )


def _right_relation(rows: list[tuple]) -> Relation:
    schema = TableSchema.build(
        "right",
        {
            "right.k1": ColumnType.INT,
            "right.k2": ColumnType.TEXT,
            "right.tag": ColumnType.TEXT,
        },
    )
    return Relation.from_rows(
        schema, [(k1, k2, f"t{i}") for i, (k1, k2) in enumerate(rows)]
    )


class TestIndexVectorJoin:
    @given(
        left=st.lists(st.tuples(KEYS, TEXT_KEYS), max_size=20),
        right=st.lists(st.tuples(KEYS, TEXT_KEYS), max_size=20),
        two_columns=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_frame_join_matches_hash_join(self, left, right, two_columns):
        """Arbitrary inputs (NULL keys included, possibly empty sides):
        the index-vector join gathers to exactly the eager result."""
        lrel = _left_relation(left)
        rrel = _right_relation(right)
        conditions = [("left.k1", "right.k1")]
        if two_columns:
            conditions.append(("left.k2", "right.k2"))
        eager = hash_join(lrel, rrel, conditions)
        framed = (
            IndexFrame.from_relation(lrel)
            .join(rrel, conditions)
            .to_relation()
        )
        assert_relations_identical(eager, framed)
        assert framed.schema.name == eager.schema.name

    @given(rows=st.lists(st.tuples(KEYS, TEXT_KEYS), max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_self_join(self, rows):
        """A relation joined with a renamed copy of itself."""
        lrel = _left_relation(rows)
        rrel = lrel.rename_columns(
            {
                "left.k1": "copy.k1",
                "left.k2": "copy.k2",
                "left.payload": "copy.payload",
            }
        )
        conditions = [("left.k1", "copy.k1")]
        eager = hash_join(lrel, rrel, conditions)
        framed = (
            IndexFrame.from_relation(lrel)
            .join(rrel, conditions)
            .to_relation()
        )
        assert_relations_identical(eager, framed)

    @given(
        left=st.lists(st.tuples(KEYS, TEXT_KEYS), max_size=12),
        mid=st.lists(st.tuples(KEYS, TEXT_KEYS), max_size=12),
        right=st.lists(st.tuples(KEYS, TEXT_KEYS), max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_chained_joins(self, left, mid, right):
        """Two chained joins: frames compose index vectors transitively."""
        lrel = _left_relation(left)
        mrel = _right_relation(mid)
        rrel = _right_relation(right).rename_columns(
            {
                "right.k1": "far.k1",
                "right.k2": "far.k2",
                "right.tag": "far.tag",
            }
        )
        c1 = [("left.k1", "right.k1")]
        c2 = [("right.k2", "far.k2")]
        eager = hash_join(hash_join(lrel, mrel, c1), rrel, c2)
        framed = (
            IndexFrame.from_relation(lrel)
            .join(mrel, c1)
            .join(rrel, c2)
            .to_relation()
        )
        assert_relations_identical(eager, framed)

    def test_empty_inputs(self):
        lrel = _left_relation([])
        rrel = _right_relation([(1, "a")])
        conditions = [("left.k1", "right.k1")]
        eager = hash_join(lrel, rrel, conditions)
        framed = (
            IndexFrame.from_relation(lrel)
            .join(rrel, conditions)
            .to_relation()
        )
        assert_relations_identical(eager, framed)
        assert framed.num_rows == 0

    def test_single_source_to_relation_preserves_schema(self):
        rel = _left_relation([(1, "a"), (2, "b")])
        frame = IndexFrame.from_relation(rel)
        assert frame.to_relation() is rel
        taken = frame.select(np.array([1], dtype=np.int64)).to_relation()
        assert taken.schema.primary_key == rel.schema.primary_key
        assert taken.schema.name == rel.schema.name

    def test_estimated_bytes_counts_index_vectors_only(self):
        rel = _left_relation([(i % 3, "a") for i in range(10)])
        frame = IndexFrame.from_relation(rel)
        assert frame.estimated_bytes == 0  # identity: no marginal cost
        joined = frame.join(
            _right_relation([(i % 3, "b") for i in range(10)]),
            [("left.k1", "right.k1")],
        )
        expected = sum(r.nbytes for r in joined.rows if r is not None)
        assert joined.estimated_bytes == expected
        assert joined.estimated_bytes < joined.to_relation().estimated_bytes


# ----------------------------------------------------------------------
# Engine pipeline: late ≡ eager, frames in the trie
# ----------------------------------------------------------------------
def _pipeline(mini_db):
    query = parse_sql(GSW_WINS_SQL)
    pt = ProvenanceTable.compute(query, mini_db)
    sg = SchemaGraph.from_database(mini_db)
    config = CajadeConfig(max_join_edges=2, f1_sample_rate=1.0)
    graphs = list(enumerate_join_graphs(sg, query, pt, mini_db, config))
    return pt, graphs


class TestWorkingTableLateMaterialization:
    def test_working_table_modes_identical(self, mini_db):
        from repro.db.executor import working_table

        query = parse_sql(GSW_WINS_SQL)
        late = working_table(query, mini_db, late_materialization=True)
        eager = working_table(query, mini_db, late_materialization=False)
        assert_relations_identical(late, eager)
        assert late.schema.name == eager.schema.name == "working"

    def test_provenance_modes_identical(self, mini_db):
        query = parse_sql(GSW_WINS_SQL)
        late = ProvenanceTable.compute(
            query, mini_db, late_materialization=True
        )
        eager = ProvenanceTable.compute(
            query, mini_db, late_materialization=False
        )
        assert_relations_identical(late.relation, eager.relation)
        assert list(late.groups) == list(eager.groups)
        for key in late.groups:
            assert np.array_equal(late.groups[key], eager.groups[key])
        assert_relations_identical(late.result, eager.result)


class TestEngineLateMaterialization:
    def test_late_engine_matches_eager_engine(self, mini_db):
        pt, graphs = _pipeline(mini_db)
        late = MaterializationEngine(
            pt, mini_db, late_materialization=True
        )
        eager = MaterializationEngine(
            pt, mini_db, late_materialization=False
        )
        for graph in graphs:
            a = late.materialize(graph)
            b = eager.materialize(graph)
            assert a.frame is not None
            assert b.frame is None
            assert np.array_equal(a.pt_row_ids, b.pt_row_ids)
            assert_relations_identical(a.relation, b.relation)
            assert [x.name for x in a.attributes] == [
                x.name for x in b.attributes
            ]
            assert a.excluded_attributes == b.excluded_attributes

    def test_late_engine_matches_direct_materialize_apt(self, mini_db):
        pt, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(pt, mini_db)
        for graph in graphs:
            direct = materialize_apt(graph, pt, mini_db)
            cached = engine.materialize(graph)
            assert_relations_identical(direct.relation, cached.relation)

    def test_direct_materialize_apt_late_flag(self, mini_db):
        pt, graphs = _pipeline(mini_db)
        for graph in graphs:
            eager = materialize_apt(graph, pt, mini_db)
            late = materialize_apt(
                graph, pt, mini_db, late_materialization=True
            )
            assert late.frame is not None
            assert_relations_identical(eager.relation, late.relation)

    def test_trie_caches_frames_with_smaller_entries(self, mini_db):
        pt, graphs = _pipeline(mini_db)
        joined = [g for g in graphs if build_plan(g, pt).joins]
        assert joined, "fixture should enumerate joined graphs"
        late = MaterializationEngine(pt, mini_db, late_materialization=True)
        eager = MaterializationEngine(
            pt, mini_db, late_materialization=False
        )
        for graph in joined:
            late.materialize(graph)
            eager.materialize(graph)
        late_stats = late.stats.cache
        eager_stats = eager.stats.cache
        assert late_stats.entries == eager_stats.entries > 0
        assert late_stats.median_entry_bytes < eager_stats.median_entry_bytes
        assert late._cache is not None
        cached_values = [
            entry for entry, _, _ in late._cache._entries.values()
        ]
        assert all(isinstance(v, IndexFrame) for v in cached_values)

    def test_restriction_namespacing_still_holds(self, mini_db):
        pt, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(pt, mini_db)
        ids = pt.relation.column("__pt_row_id")
        half = ids[: len(ids) // 2]
        for graph in graphs[:4]:
            unrestricted = engine.materialize(graph, restrict_row_ids=None)
            restricted = engine.materialize(graph, restrict_row_ids=half)
            direct = materialize_apt(
                graph, pt, mini_db, restrict_row_ids=half
            )
            assert_relations_identical(restricted.relation, direct.relation)
            assert unrestricted.num_rows >= restricted.num_rows


# ----------------------------------------------------------------------
# Gather-built kernel codes ≡ per-APT re-encoded codes
# ----------------------------------------------------------------------
class TestKernelCodeGathering:
    def _evaluators(self, mini_db, sample_rate=1.0):
        pt, graphs = _pipeline(mini_db)
        joined = [g for g in graphs if build_plan(g, pt).joins]
        graph = joined[0]
        late_apt = materialize_apt(
            graph, pt, mini_db, late_materialization=True
        )
        eager_apt = materialize_apt(graph, pt, mini_db)
        ids = pt.relation.column("__pt_row_id")
        ids1, ids2 = ids[: len(ids) // 2], ids[len(ids) // 2 :]
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        late_eval = QualityEvaluator(
            late_apt, ids1, ids2, sample_rate=sample_rate, rng=rng1
        )
        eager_eval = QualityEvaluator(
            eager_apt, ids1, ids2, sample_rate=sample_rate, rng=rng2
        )
        return late_apt, late_eval, eager_eval

    def test_gathered_kernel_built_from_encodings(self, mini_db):
        late_apt, late_eval, _ = self._evaluators(mini_db)
        kernel = late_eval.kernel
        assert kernel is not None
        categorical = [
            a.name for a in late_apt.attributes if not a.is_numeric
        ]
        assert categorical
        assert kernel._gathered >= set(categorical)
        # Object columns never materialized for the kernel build.
        assert all(
            name not in late_eval.columns()._cache for name in categorical
        )

    @pytest.mark.parametrize("sample_rate", [1.0, 0.6])
    def test_masks_coverage_and_ml_codes_identical(
        self, mini_db, sample_rate
    ):
        late_apt, late_eval, eager_eval = self._evaluators(
            mini_db, sample_rate
        )
        lk, ek = late_eval.kernel, eager_eval.kernel
        assert lk is not None and ek is not None
        categorical = [
            a.name for a in late_apt.attributes if not a.is_numeric
        ]
        for name in categorical:
            late_ml = lk.ml_codes(name)
            eager_ml = ek.ml_codes(name)
            assert late_ml is not None and eager_ml is not None
            # Renumbered gathered codes == per-APT first-occurrence codes.
            assert np.array_equal(late_ml, eager_ml)
            late_match = lk.match_codes(name)
            eager_match = ek.match_codes(name)
            # Numbering may differ (table-level vs per-APT), but the
            # NULL sentinel and the induced partition must agree.
            assert np.array_equal(late_match == -1, eager_match == -1)
            values = late_eval.columns()[name]
            for value in {v for v in values.tolist() if v is not None}:
                assert np.array_equal(
                    lk.predicate_mask(name, OP_EQ, value),
                    ek.predicate_mask(name, OP_EQ, value),
                )
            assert np.array_equal(
                lk.predicate_mask(name, OP_EQ, "absent-value"),
                ek.predicate_mask(name, OP_EQ, "absent-value"),
            )
        # Coverage agrees on single- and multi-predicate patterns.
        name = categorical[0]
        values = [
            v
            for v in late_eval.columns()[name].tolist()
            if v is not None
        ]
        pattern = Pattern([PatternPredicate(name, OP_EQ, values[0])])
        assert lk.coverage(pattern) == ek.coverage(pattern)
        assert (
            late_eval.coverage_counts(pattern)
            == eager_eval.coverage_counts(pattern)
            == late_eval.coverage_counts_reference(pattern)
        )

    def test_verify_kernel_passes_on_late_apts(self, mini_db):
        pt, graphs = _pipeline(mini_db)
        joined = [g for g in graphs if build_plan(g, pt).joins]
        apt = materialize_apt(
            joined[0], pt, mini_db, late_materialization=True
        )
        ids = pt.relation.column("__pt_row_id")
        evaluator = QualityEvaluator(
            apt,
            ids[: len(ids) // 2],
            ids[len(ids) // 2 :],
            verify_kernel=True,
        )
        name = next(
            a.name for a in apt.attributes if not a.is_numeric
        )
        value = next(
            v
            for v in evaluator.columns()[name].tolist()
            if v is not None
        )
        pattern = Pattern([PatternPredicate(name, OP_EQ, value)])
        evaluator.coverage_counts(pattern)  # raises on any mismatch


# ----------------------------------------------------------------------
# Full-pipeline byte-identity (knob on/off, serial and workers=4)
# ----------------------------------------------------------------------
def _ranked_payload(response) -> str:
    payload = json.loads(response.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


class TestFullPipelineByteIdentity:
    @pytest.mark.parametrize("f1_sample_rate", [1.0, 0.5])
    def test_knob_and_workers_identity(
        self, mini_db, mini_schema_graph, f1_sample_rate
    ):
        from repro.api import CajadeSession
        from repro.core.question import ComparisonQuestion

        question = ComparisonQuestion(
            {"season": "2015-16"}, {"season": "2012-13"}
        )
        base = CajadeConfig(
            max_join_edges=2,
            num_selected_attrs=3,
            f1_sample_rate=f1_sample_rate,
            seed=4,
        )
        payloads = []
        for overrides in (
            {},
            {"late_materialization": False},
            {"workers": 4},
            {"late_materialization": False, "workers": 4},
        ):
            session = CajadeSession(
                mini_db, mini_schema_graph, base.with_overrides(**overrides)
            )
            response = session.explain(GSW_WINS_SQL, question)
            payloads.append(_ranked_payload(response))
        assert len(set(payloads)) == 1

    def test_qnba_sampled_evaluator_identity(self, nba_small):
        """λF1-samp universe construction stays vectorized: on the Qnba
        workload the sampled-evaluator output (and therefore the ranked
        explanations) is identical with late materialization on and off."""
        from repro.api import CajadeSession
        from repro.datasets import user_study_query

        db, schema_graph = nba_small
        workload = user_study_query()
        base = CajadeConfig(
            max_join_edges=1,
            num_selected_attrs=3,
            f1_sample_rate=0.3,
            seed=2,
        )
        payloads = []
        for late in (True, False):
            session = CajadeSession(
                db,
                schema_graph,
                base.with_overrides(late_materialization=late),
            )
            response = session.explain(workload.sql, workload.question)
            payloads.append(_ranked_payload(response))
        assert payloads[0] == payloads[1]

    def test_cli_flag_round_trip(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["workload", "Qnba1", "--no-late-mat"]
        )
        assert args.no_late_mat is True
        args = build_parser().parse_args(["workload", "Qnba1"])
        assert args.no_late_mat is False


# ----------------------------------------------------------------------
# Vectorized distinct / primary key / row_ids_excluding semantics
# ----------------------------------------------------------------------
CELLS = st.one_of(
    st.none(),
    st.sampled_from(["x", "y", "z"]),
)
NUMS = st.one_of(st.none(), st.integers(min_value=-2, max_value=2))


def _mixed_relation(rows: list[tuple]) -> Relation:
    schema = TableSchema.build(
        "mixed",
        {
            "cat": ColumnType.TEXT,
            "num": ColumnType.INT,  # NULLs promote to float64 + NaN
            "flag": ColumnType.INT,
        },
    )
    return Relation.from_rows(
        schema, [(c, n, i % 2) for i, (c, n) in enumerate(rows)]
    )


def _reference_distinct_keep(relation: Relation) -> list[int]:
    seen: set[tuple] = set()
    keep: list[int] = []
    for i, row in enumerate(relation.iter_rows()):
        if row not in seen:
            seen.add(row)
            keep.append(i)
    return keep


class TestVectorizedDedup:
    @given(rows=st.lists(st.tuples(CELLS, NUMS), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_distinct_matches_reference(self, rows):
        relation = _mixed_relation(rows)
        result = relation.distinct()
        expected = relation.take(
            np.array(_reference_distinct_keep(relation), dtype=np.int64)
        )
        assert_relations_identical(result, expected)

    def test_distinct_keeps_nan_rows_apart(self):
        """NULL-promoted NaN cells never compare equal (the historical
        tuple-set semantics), so NaN rows all survive distinct()."""
        relation = _mixed_relation([("x", None), ("x", None), ("x", 1)])
        assert relation.distinct().num_rows == 3

    @given(
        keys=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c", "d"]), NUMS),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_primary_key_check_matches_reference(self, keys):
        schema = TableSchema.build(
            "pk",
            {"k": ColumnType.TEXT, "v": ColumnType.INT},
            primary_key=("k", "v"),
        )
        non_null = [k for k in keys if k[1] is not None]
        has_duplicate = len(set(non_null)) < len(non_null)
        if has_duplicate:
            with pytest.raises(IntegrityError):
                Relation.from_rows(schema, keys)
        else:
            # NaN keys never collide (fresh NaN scalars are unequal).
            relation = Relation.from_rows(schema, keys)
            assert relation.num_rows == len(keys)

    def test_row_ids_excluding_matches_set_reference(self, mini_db):
        query = parse_sql(GSW_WINS_SQL)
        pt = ProvenanceTable.compute(query, mini_db)
        for key in pt.groups:
            fast = pt.row_ids_excluding(key)
            own = set(pt.row_ids_of(key).tolist())
            all_ids = pt.relation.column("__pt_row_id")
            reference = np.array(
                [i for i in all_ids if i not in own], dtype=np.int64
            )
            assert np.array_equal(fast, reference)
            assert fast.dtype == np.int64


# ----------------------------------------------------------------------
# Load-time encodings
# ----------------------------------------------------------------------
class TestLoadTimeEncoding:
    def test_database_encodes_text_columns_at_load(self):
        db = Database("enc")
        db.create_table(
            TableSchema.build(
                "t", {"name": ColumnType.TEXT, "v": ColumnType.INT}
            ),
            [("a", 1), ("b", 2), ("a", 3), (None, 4)],
        )
        relation = db.table("t")
        assert "name" in relation._encodings
        encoding = relation.encoding("name")
        assert encoding is not None
        assert np.array_equal(encoding.codes, [0, 1, 0, 2])
        assert encoding.none_code == 2
        assert np.array_equal(encoding.match_codes, [0, 1, 0, -1])

    def test_prefixed_relations_share_encodings(self):
        db = Database("enc")
        db.create_table(
            TableSchema.build("t", {"name": ColumnType.TEXT}),
            [("a",), ("b",)],
        )
        base = db.table("t")
        prefixed = base.prefix_columns("x.")
        assert prefixed.encoding("x.name") is base.encoding("name")

    def test_numeric_columns_have_no_encoding(self):
        db = Database("enc")
        db.create_table(
            TableSchema.build("t", {"v": ColumnType.INT}), [(1,), (2,)]
        )
        assert db.table("t").encoding("v") is None
