"""Unit tests for MineAPT (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    CajadeConfig,
    ComparisonQuestion,
    materialize_apt,
    mine_apt,
)
from repro.core.timing import F_SCORE_CALC, StepTimer
from repro.db import ProvenanceTable, parse_sql
from tests.conftest import GSW_WINS_SQL
from tests.test_core_apt import star_join_graph


@pytest.fixture()
def setup(mini_db):
    pt = ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)
    question = ComparisonQuestion(
        {"season": "2015-16"}, {"season": "2012-13"}
    )
    resolved = question.resolve(pt)
    apt = materialize_apt(star_join_graph(), pt, mini_db)
    return apt, resolved


def run(apt, resolved, **overrides):
    defaults = dict(
        top_k=5,
        f1_sample_rate=1.0,
        lca_sample_rate=1.0,
        num_selected_attrs=4,
        seed=3,
    )
    defaults.update(overrides)
    config = CajadeConfig(**defaults)
    return mine_apt(apt, resolved, config, np.random.default_rng(3))


class TestMineApt:
    def test_finds_star_player_signal(self, setup):
        apt, resolved = setup
        result = run(apt, resolved)
        assert result.patterns
        best = result.patterns[0]
        assert best.f_score > 0.9
        used = set()
        for mp in result.patterns:
            used |= mp.pattern.attributes
        assert "player_game.pts" in used or "player.player_name" in used

    def test_respects_top_k(self, setup):
        apt, resolved = setup
        result = run(apt, resolved, top_k=2)
        assert len(result.patterns) <= 2

    def test_sorted_by_construction(self, setup):
        apt, resolved = setup
        result = run(apt, resolved, use_diversity=False)
        scores = [mp.f_score for mp in result.patterns]
        assert scores == sorted(scores, reverse=True)

    def test_recall_threshold_filters(self, setup):
        apt, resolved = setup
        result = run(apt, resolved, recall_threshold=0.5)
        for mp in result.patterns:
            assert mp.stats.recall > 0.5

    def test_pruning_off_examines_more(self, setup):
        apt, resolved = setup
        pruned = run(apt, resolved, recall_threshold=0.4)
        unpruned = run(apt, resolved, use_recall_pruning=False)
        assert unpruned.candidates_examined >= pruned.candidates_examined

    def test_numeric_cap_respected(self, setup):
        apt, resolved = setup
        result = run(apt, resolved, max_numeric_predicates=1)
        numeric = apt.numeric_attribute_names()
        for mp in result.patterns:
            assert mp.pattern.num_numeric_predicates(numeric) <= 1

    def test_deterministic(self, setup):
        apt, resolved = setup
        r1 = run(apt, resolved)
        r2 = run(apt, resolved)
        assert [
            (mp.pattern, mp.primary) for mp in r1.patterns
        ] == [(mp.pattern, mp.primary) for mp in r2.patterns]

    def test_timer_steps_recorded(self, setup):
        apt, resolved = setup
        timer = StepTimer()
        config = CajadeConfig(
            top_k=3, f1_sample_rate=1.0, lca_sample_rate=1.0,
            num_selected_attrs=4,
        )
        mine_apt(apt, resolved, config, np.random.default_rng(0), timer=timer)
        assert timer.seconds(F_SCORE_CALC) > 0
        assert timer.total > 0

    def test_patterns_avoid_group_by_attributes(self, setup):
        apt, resolved = setup
        result = run(apt, resolved)
        for mp in result.patterns:
            for attr in mp.pattern.attributes:
                assert not attr.endswith(".season")
                assert not attr.endswith(".winner")

    def test_primary_labels_valid(self, setup):
        apt, resolved = setup
        result = run(apt, resolved)
        assert all(mp.primary in (1, 2) for mp in result.patterns)

    def test_sampled_mining_still_finds_signal(self, setup):
        apt, resolved = setup
        result = run(apt, resolved, f1_sample_rate=0.9)
        assert result.patterns
        assert result.patterns[0].f_score > 0.5
