"""Property and equivalence tests for the columnar mining kernel.

The contract under test: kernel scoring is *byte-identical* to the
retained naive reference path (`QualityEvaluator.coverage_counts_reference`
and `Pattern.match_mask`) for every pattern, including NULL/NaN rows,
empty patterns, sampled evaluators, incremental parent-mask reuse, and
LRU eviction fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CajadeConfig,
    ComparisonQuestion,
    MiningKernel,
    Pattern,
    PatternPredicate,
    QualityEvaluator,
    materialize_apt,
    mine_apt,
)
from repro.core.apt import APTAttribute, AugmentedProvenanceTable
from repro.core.kernel import MaskCache
from repro.core.pattern import OP_EQ, OP_GE, OP_LE
from repro.core.timing import (
    KERNEL_FULL_EVALS,
    KERNEL_INCREMENTAL_EVALS,
    KERNEL_MASK_HITS,
    StepTimer,
)
from repro.db import ColumnType, ProvenanceTable, TableSchema, parse_sql
from repro.db.relation import Relation
from tests.conftest import GSW_WINS_SQL
from tests.test_core_apt import star_join_graph

CATEGORIES = ("red", "blue", "green", None)


# ----------------------------------------------------------------------
# Randomized synthetic APTs
# ----------------------------------------------------------------------
def build_apt(rows: list[tuple]) -> AugmentedProvenanceTable:
    """An APT over (pt_row_id, cat TEXT, num FLOAT, cnt INT) rows.

    ``num`` may be NaN (NULL); ``cat`` may be None.  The join graph is
    irrelevant to scoring and left None.
    """
    schema = TableSchema.build(
        "apt",
        {
            "__pt_row_id": ColumnType.INT,
            "cat": ColumnType.TEXT,
            "num": ColumnType.FLOAT,
            "cnt": ColumnType.INT,
        },
    )
    relation = Relation(
        schema,
        {
            "__pt_row_id": np.array([r[0] for r in rows], dtype=np.int64),
            "cat": np.array([r[1] for r in rows], dtype=object),
            "num": np.array(
                [np.nan if r[2] is None else float(r[2]) for r in rows],
                dtype=np.float64,
            ),
            "cnt": np.array([r[3] for r in rows], dtype=np.int64),
        },
    )
    return AugmentedProvenanceTable(
        join_graph=None,
        relation=relation,
        attributes=[
            APTAttribute("cat", is_numeric=False, from_provenance=True),
            APTAttribute("num", is_numeric=True, from_provenance=True),
            APTAttribute("cnt", is_numeric=True, from_provenance=False),
        ],
        excluded_attributes=[],
    )


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),  # pt_row_id (with fanout)
        st.sampled_from(CATEGORIES),
        st.one_of(st.none(), st.integers(min_value=-3, max_value=8)),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=50,
)

predicate_strategy = st.one_of(
    st.builds(
        PatternPredicate,
        st.just("cat"),
        st.just(OP_EQ),
        st.sampled_from(("red", "blue", "green", "absent")),
    ),
    st.builds(
        PatternPredicate,
        st.just("num"),
        st.sampled_from((OP_LE, OP_GE, OP_EQ)),
        st.integers(min_value=-3, max_value=8),
    ),
    st.builds(
        PatternPredicate,
        st.just("cnt"),
        st.sampled_from((OP_LE, OP_GE)),
        st.integers(min_value=0, max_value=5),
    ),
)

patterns_strategy = st.lists(
    st.lists(predicate_strategy, min_size=0, max_size=3),
    min_size=1,
    max_size=6,
)


def safe_pattern(predicates: list[PatternPredicate]) -> Pattern:
    """Drop duplicate (attribute, op) conjuncts instead of raising."""
    unique: dict[tuple[str, str], PatternPredicate] = {}
    for predicate in predicates:
        unique.setdefault((predicate.attribute, predicate.op), predicate)
    return Pattern(unique.values())


def split_ids(rows, sides_seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministically partition the provenance universe (plus some
    ids whose rows the join 'dropped') into the two question sides."""
    ids = sorted({r[0] for r in rows} | {97, 98})
    rng = np.random.default_rng(sides_seed)
    mask = rng.random(len(ids)) < 0.5
    ids1 = np.array([i for i, m in zip(ids, mask) if m], dtype=np.int64)
    ids2 = np.array([i for i, m in zip(ids, mask) if not m], dtype=np.int64)
    return ids1, ids2


class TestKernelMatchesReference:
    @given(rows=rows_strategy, raw_patterns=patterns_strategy,
           sides_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=120, deadline=None)
    def test_coverage_equals_reference(
        self, rows, raw_patterns, sides_seed
    ):
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        evaluator = QualityEvaluator(apt, ids1, ids2)
        for raw in raw_patterns:
            pattern = safe_pattern(raw)
            assert evaluator.coverage_counts(pattern) == (
                evaluator.coverage_counts_reference(pattern)
            )

    @given(rows=rows_strategy, raw_patterns=patterns_strategy,
           sides_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_masks_equal_match_mask(self, rows, raw_patterns, sides_seed):
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        evaluator = QualityEvaluator(apt, ids1, ids2)
        kernel = evaluator.kernel
        columns = evaluator.columns()
        for raw in raw_patterns:
            pattern = safe_pattern(raw)
            np.testing.assert_array_equal(
                kernel.pattern_mask(pattern),
                pattern.match_mask(columns),
            )

    @given(rows=rows_strategy, raw_patterns=patterns_strategy,
           sides_seed=st.integers(min_value=0, max_value=7),
           rate=st.sampled_from((0.3, 0.5, 0.8)))
    @settings(max_examples=60, deadline=None)
    def test_sampled_evaluator_equals_reference(
        self, rows, raw_patterns, sides_seed, rate
    ):
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        evaluator = QualityEvaluator(
            apt, ids1, ids2, sample_rate=rate,
            rng=np.random.default_rng(13),
        )
        for raw in raw_patterns:
            pattern = safe_pattern(raw)
            assert evaluator.coverage_counts(pattern) == (
                evaluator.coverage_counts_reference(pattern)
            )

    @given(rows=rows_strategy, base=predicate_strategy,
           extra=predicate_strategy,
           sides_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=80, deadline=None)
    def test_incremental_equals_full(
        self, rows, base, extra, sides_seed
    ):
        """parent & predicate must equal evaluating the child outright."""
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        parent = safe_pattern([base])
        child = safe_pattern([base, extra])

        incremental = QualityEvaluator(apt, ids1, ids2)
        incremental.coverage_counts(parent)  # warm the parent's mask
        with_hint = incremental.coverage_counts(child, parent=parent)

        outright = QualityEvaluator(apt, ids1, ids2)
        assert with_hint == outright.coverage_counts(child)
        assert with_hint == outright.coverage_counts_reference(child)

    @given(rows=rows_strategy, raw_patterns=patterns_strategy,
           sides_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_derived_kernel_equals_fresh(
        self, rows, raw_patterns, sides_seed
    ):
        """A sampled evaluator slicing the exact evaluator's encodings
        must score exactly like one that encoded from scratch."""
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        full = QualityEvaluator(apt, ids1, ids2)
        assert full.kernel is not None  # force the source encoding
        derived = QualityEvaluator(
            apt, ids1, ids2, sample_rate=0.5,
            rng=np.random.default_rng(5), encoding_source=full,
        )
        fresh = QualityEvaluator(
            apt, ids1, ids2, sample_rate=0.5,
            rng=np.random.default_rng(5),
        )
        for raw in raw_patterns:
            pattern = safe_pattern(raw)
            assert derived.coverage_counts(pattern) == (
                fresh.coverage_counts(pattern)
            )
            assert derived.coverage_counts(pattern) == (
                derived.coverage_counts_reference(pattern)
            )

    def test_source_kernel_built_on_demand(self):
        """A sampled evaluator must derive from its encoding source even
        when nothing has built the source's kernel yet (the
        ``use_feature_selection=False`` arm used to re-encode here)."""
        rows = [(i, ("red", "blue", None)[i % 3], i, i % 2)
                for i in range(12)]
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, 1)
        full = QualityEvaluator(apt, ids1, ids2)
        assert full._kernel is None  # source not built yet
        sampled = QualityEvaluator(
            apt, ids1, ids2, sample_rate=0.5,
            rng=np.random.default_rng(2), encoding_source=full,
        )
        kernel = sampled.kernel
        assert kernel is not None and kernel._derived
        assert full._kernel is not None  # built on demand
        assert kernel._dicts["cat"] == full._kernel._dicts["cat"]
        pattern = Pattern([PatternPredicate("cat", OP_EQ, "red")])
        assert sampled.coverage_counts(pattern) == (
            sampled.coverage_counts_reference(pattern)
        )

    @given(rows=rows_strategy,
           sides_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_empty_pattern_and_side_labels(self, rows, sides_seed):
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        evaluator = QualityEvaluator(apt, ids1, ids2)
        empty = Pattern()
        assert evaluator.coverage_counts(empty) == (
            evaluator.coverage_counts_reference(empty)
        )
        # side_labels must agree with a per-row dict lookup.
        side = {int(pid): 1 for pid in ids1.tolist()}
        side.update({int(pid): 2 for pid in ids2.tolist()})
        expected = [side[int(pid)] for pid in evaluator._pt_ids.tolist()]
        assert evaluator.side_labels().tolist() == expected


class TestEvictionAndCacheModes:
    @given(rows=rows_strategy, raw_patterns=patterns_strategy,
           sides_seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_tiny_cache_still_exact(self, rows, raw_patterns, sides_seed):
        """Evictions force full-evaluation fallbacks, never wrong counts."""
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, sides_seed)
        tiny = QualityEvaluator(
            apt, ids1, ids2, kernel_cache_mb=2e-5  # ~20 bytes
        )
        for raw in raw_patterns:
            pattern = safe_pattern(raw)
            assert tiny.coverage_counts(pattern) == (
                tiny.coverage_counts_reference(pattern)
            )

    def test_zero_budget_disables_memoization(self):
        rows = [(i, "red" if i % 2 else "blue", i, i % 3) for i in range(8)]
        apt = build_apt(rows)
        ids1, ids2 = split_ids(rows, 0)
        evaluator = QualityEvaluator(apt, ids1, ids2, kernel_cache_mb=0.0)
        pattern = safe_pattern([PatternPredicate("cat", OP_EQ, "red")])
        first = evaluator.coverage_counts(pattern)
        second = evaluator.coverage_counts(pattern)
        assert first == second
        kernel = evaluator.kernel
        assert kernel.mask_hits == 0
        assert kernel.mask_misses >= 2
        assert len(kernel.cache) == 0

    def test_mask_cache_lru_eviction_order(self):
        cache = MaskCache(budget_bytes=20)
        a = np.ones(8, dtype=bool)
        b = np.zeros(8, dtype=bool)
        c = np.ones(8, dtype=bool)
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refresh a's recency
        cache.put("c", c)  # evicts b (LRU), not a
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c
        assert cache.evictions == 1

    def test_oversized_entry_not_stored(self):
        cache = MaskCache(budget_bytes=4)
        cache.put("big", np.ones(64, dtype=bool))
        assert cache.get("big") is None
        assert cache.evictions == 0


class TestKernelDirect:
    def test_null_codes_never_match(self):
        columns = {
            "cat": np.array(["x", None, "y", np.nan, "x"], dtype=object)
        }
        kernel = MiningKernel(
            columns, np.arange(5), m1=3, m2=2, cache_mb=1.0
        )
        np.testing.assert_array_equal(
            kernel.predicate_mask("cat", OP_EQ, "x"),
            np.array([True, False, False, False, True]),
        )
        # NaN query values match nothing (NaN != NaN) even though the
        # cell's NaN object is dict-encoded.
        assert not kernel.predicate_mask("cat", OP_EQ, np.nan).any()
        assert not kernel.predicate_mask("cat", OP_EQ, None).any()
        assert not kernel.predicate_mask("cat", OP_EQ, "absent").any()

    def test_categorical_rejects_inequality(self):
        columns = {"cat": np.array(["x", "y"], dtype=object)}
        kernel = MiningKernel(columns, np.arange(2), m1=1, m2=1)
        with pytest.raises(ValueError, match="not allowed on categorical"):
            kernel.predicate_mask("cat", OP_LE, "x")

    def test_missing_attribute_raises(self):
        kernel = MiningKernel({}, np.empty(0, dtype=np.int64), m1=0, m2=0)
        with pytest.raises(KeyError):
            kernel.predicate_mask("nope", OP_EQ, 1)

    def test_ml_codes_match_varclus_encoding(self):
        from repro.ml.varclus import encode_columns

        arr = np.array(["b", None, "a", "b", "c", None], dtype=object)
        kernel = MiningKernel(
            {"cat": arr}, np.arange(6), m1=3, m2=3
        )
        expected = encode_columns({"cat": arr})[:, 0]
        np.testing.assert_array_equal(
            kernel.ml_codes("cat").astype(np.float64), expected
        )
        # counting codes: None -> -1, everything else keeps its code.
        counting = kernel.counting_codes("cat")
        assert counting.tolist() == [0, -1, 2, 0, 3, -1]

    def test_derived_kernel_hides_ml_codes(self):
        """Sliced codes are not first-occurrence-numbered, so derived
        kernels must not offer them as varclus-compatible encodings."""
        arr = np.array(["b", "a", "b", "c"], dtype=object)
        source = MiningKernel({"cat": arr}, np.arange(4), m1=2, m2=2)
        derived = MiningKernel.derived(
            source, np.array([False, True, True, True]),
            np.arange(3), m1=1, m2=2,
        )
        assert source.ml_codes("cat") is not None
        assert derived.ml_codes("cat") is None
        # Matching and counting stay exact (numbering-independent).
        np.testing.assert_array_equal(
            derived.predicate_mask("cat", OP_EQ, "b"),
            np.array([False, True, False]),
        )
        assert derived.counting_codes("cat") is not None

    def test_code_matrix_views(self):
        arr = np.array(["b", None, "a", np.nan, "b"], dtype=object)
        num = np.arange(5, dtype=np.float64)
        kernel = MiningKernel(
            {"cat": arr, "num": num}, np.arange(5), m1=3, m2=2
        )
        match = kernel.code_matrix(["cat"], kind="match")
        assert match.dtype == np.int32
        # None and NaN are both -1 in the match view ...
        assert match[:, 0].tolist() == [0, -1, 2, -1, 0]
        # ... but only None is -1 in the counting (singleton) view.
        counting = kernel.code_matrix(["cat"], kind="counting")
        assert counting[:, 0].tolist() == [0, -1, 2, 3, 0]
        # numeric columns have no dictionary codes -> whole view is None
        assert kernel.code_matrix(["cat", "num"]) is None
        # decode round-trips to the original first-occurrence objects
        values = kernel.code_values("cat")
        assert values[0] == "b" and values[2] == "a"
        assert values[3] is arr[3]  # the NaN object itself
        assert kernel.code_values("num") is None

    def test_counters_exposed(self):
        columns = {"cat": np.array(["x", "y"], dtype=object)}
        kernel = MiningKernel(columns, np.arange(2), m1=1, m2=1)
        kernel.predicate_mask("cat", OP_EQ, "x")
        kernel.predicate_mask("cat", OP_EQ, "x")
        counters = kernel.counters()
        assert counters[KERNEL_MASK_HITS] == 1


# ----------------------------------------------------------------------
# End-to-end: kernel on/off is byte-identical through mine_apt
# ----------------------------------------------------------------------
@pytest.fixture()
def mined_setup(mini_db):
    pt = ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)
    question = ComparisonQuestion(
        {"season": "2015-16"}, {"season": "2012-13"}
    )
    resolved = question.resolve(pt)
    apt = materialize_apt(star_join_graph(), pt, mini_db)
    return apt, resolved


def _mine(apt, resolved, **overrides):
    defaults = dict(
        top_k=5, f1_sample_rate=1.0, lca_sample_rate=1.0,
        num_selected_attrs=4, seed=3,
    )
    defaults.update(overrides)
    config = CajadeConfig(**defaults)
    return mine_apt(apt, resolved, config, np.random.default_rng(3))


def _fingerprint(result):
    return [
        (mp.pattern, mp.primary, mp.stats.tp, mp.stats.fp, mp.stats.fn)
        for mp in result.patterns
    ]


class TestMineAptKernelEquivalence:
    def test_kernel_on_off_identical(self, mined_setup):
        apt, resolved = mined_setup
        on = _mine(apt, resolved, use_kernel=True)
        off = _mine(apt, resolved, use_kernel=False)
        assert _fingerprint(on) == _fingerprint(off)
        assert on.candidates_examined == off.candidates_examined

    def test_code_lca_on_off_identical(self, mined_setup):
        """The code-based LCA is an execution strategy: candidate set,
        examined count and ranked patterns match the object-based path."""
        apt, resolved = mined_setup
        coded = _mine(apt, resolved, use_code_lca=True)
        objected = _mine(apt, resolved, use_code_lca=False)
        assert _fingerprint(coded) == _fingerprint(objected)
        assert coded.candidates_examined == objected.candidates_examined

    def test_code_lca_identical_with_sampling(self, mined_setup):
        apt, resolved = mined_setup
        coded = _mine(
            apt, resolved, use_code_lca=True,
            f1_sample_rate=0.6, lca_sample_rate=0.5,
        )
        objected = _mine(
            apt, resolved, use_code_lca=False,
            f1_sample_rate=0.6, lca_sample_rate=0.5,
        )
        assert _fingerprint(coded) == _fingerprint(objected)

    def test_kernel_on_off_identical_with_sampling(self, mined_setup):
        apt, resolved = mined_setup
        on = _mine(apt, resolved, use_kernel=True, f1_sample_rate=0.6)
        off = _mine(apt, resolved, use_kernel=False, f1_sample_rate=0.6)
        assert _fingerprint(on) == _fingerprint(off)

    def test_kernel_verify_passes(self, mined_setup):
        apt, resolved = mined_setup
        verified = _mine(apt, resolved, kernel_verify=True)
        plain = _mine(apt, resolved)
        assert _fingerprint(verified) == _fingerprint(plain)

    def test_tiny_mask_cache_identical(self, mined_setup):
        apt, resolved = mined_setup
        tiny = _mine(apt, resolved, kernel_cache_mb=2e-5)
        full = _mine(apt, resolved)
        assert _fingerprint(tiny) == _fingerprint(full)

    def test_kernel_counters_in_timer(self, mined_setup):
        apt, resolved = mined_setup
        timer = StepTimer()
        config = CajadeConfig(
            top_k=3, f1_sample_rate=1.0, lca_sample_rate=1.0,
            num_selected_attrs=4,
        )
        mine_apt(apt, resolved, config, np.random.default_rng(0), timer=timer)
        counters = timer.counters()
        assert (
            counters.get(KERNEL_INCREMENTAL_EVALS, 0)
            + counters.get(KERNEL_FULL_EVALS, 0)
        ) > 0


class TestConfigAndCli:
    def test_negative_kernel_cache_rejected(self):
        with pytest.raises(ValueError, match="kernel_cache_mb"):
            CajadeConfig(kernel_cache_mb=-1.0)

    def test_cli_kernel_flags(self):
        from repro.cli import build_parser, _config_from

        args = build_parser().parse_args(
            ["workload", "Qnba1", "--no-kernel", "--kernel-cache-mb", "8"]
        )
        config = _config_from(args)
        assert config.use_kernel is False
        assert config.kernel_cache_mb == 8.0
