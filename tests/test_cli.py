"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_tuple_spec, build_parser, main


class TestTupleSpec:
    def test_types_inferred(self):
        out = _parse_tuple_spec(["season=2015-16", "k=3", "r=0.5"])
        assert out == {"season": "2015-16", "k": 3, "r": 0.5}

    def test_quoted_values_stay_strings(self):
        out = _parse_tuple_spec(
            ['name="2015"', "city='7.5'", 'word="true"']
        )
        assert out == {"name": "2015", "city": "7.5", "word": "true"}
        assert all(isinstance(v, str) for v in out.values())

    def test_boolean_values(self):
        out = _parse_tuple_spec(
            ["a=true", "b=false", "c=True", "d=FALSE"]
        )
        assert out == {"a": True, "b": False, "c": True, "d": False}

    def test_quotes_preserved_inside_value(self):
        # Mismatched or interior quotes are not stripped.
        out = _parse_tuple_spec(["x='mixed\"", "y=o'brien"])
        assert out == {"x": "'mixed\"", "y": "o'brien"}

    def test_empty_and_equals_in_value(self):
        out = _parse_tuple_spec(["x=", "expr=a=b"])
        assert out == {"x": "", "expr": "a=b"}

    def test_bad_spec_exits(self):
        with pytest.raises(SystemExit):
            _parse_tuple_spec(["noequals"])


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["generate", "nba", "--out", "/tmp/x"],
            ["workload", "Qnba1"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEndToEnd:
    def test_generate_then_explain(self, tmp_path, capsys):
        out_dir = tmp_path / "nba"
        assert main(
            ["generate", "nba", "--scale", "0.08", "--out", str(out_dir)]
        ) == 0
        assert (out_dir / "schema.json").exists()
        captured = capsys.readouterr()
        assert "wrote" in captured.out

        sql = (
            "SELECT COUNT(*) AS win, s.season_name FROM team t, game g, "
            "season s WHERE t.team_id = g.winner_id AND "
            "g.season_id = s.season_id AND t.team = 'GSW' "
            "GROUP BY s.season_name"
        )
        code = main(
            [
                "explain", str(out_dir),
                "--sql", sql,
                "--t1", "season_name=2015-16",
                "--t2", "season_name=2012-13",
                "--edges", "1",
                "--f1-sample", "1.0",
                "--top-k", "3",
                "--sentences",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "question:" in captured.out
        assert "because" in captured.out

    def test_outlier_question_via_cli(self, tmp_path, capsys):
        out_dir = tmp_path / "nba"
        main(["generate", "nba", "--scale", "0.08", "--out", str(out_dir)])
        capsys.readouterr()
        sql = (
            "SELECT COUNT(*) AS win, s.season_name FROM team t, game g, "
            "season s WHERE t.team_id = g.winner_id AND "
            "g.season_id = s.season_id AND t.team = 'GSW' "
            "GROUP BY s.season_name"
        )
        code = main(
            [
                "explain", str(out_dir),
                "--sql", sql,
                "--t1", "season_name=2015-16",
                "--edges", "0",
                "--f1-sample", "1.0",
            ]
        )
        assert code == 0
        assert "question:" in capsys.readouterr().out

    def test_workload_command(self, capsys):
        code = main(
            [
                "workload", "Qmimic2",
                "--scale", "0.05",
                "--edges", "1",
                "--top-k", "3",
                "--f1-sample", "1.0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Qmimic2" in captured.out


class TestEngineFlags:
    def test_invalid_workers_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "explain", str(tmp_path), "--sql", "SELECT 1 AS x",
                    "--t1", "x=1", "--workers", "0",
                ]
            )
        assert "invalid configuration" in str(excinfo.value)
        assert "workers" in str(excinfo.value)

    def test_invalid_cache_budget_clean_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "explain", str(tmp_path), "--sql", "SELECT 1 AS x",
                    "--t1", "x=1", "--apt-cache-mb", "-3",
                ]
            )
        assert "apt_cache_mb" in str(excinfo.value)
