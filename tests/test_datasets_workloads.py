"""Tests for the 10-query workload definitions."""

import pytest

from repro.datasets import (
    all_queries,
    mimic_queries,
    nba_queries,
    query_by_name,
    user_study_query,
)
from repro.db import parse_sql


class TestWorkloadDefinitions:
    def test_ten_queries(self):
        assert len(all_queries()) == 10
        assert len(nba_queries()) == 5
        assert len(mimic_queries()) == 5

    def test_names_unique(self):
        names = [q.name for q in all_queries()]
        assert len(set(names)) == 10

    def test_all_sql_parses(self):
        for workload in all_queries():
            query = parse_sql(workload.sql)
            assert query.group_by

    def test_query_by_name(self):
        assert query_by_name("Qnba3").dataset == "nba"
        with pytest.raises(KeyError):
            query_by_name("Qxx")

    def test_user_study_query(self):
        wq = user_study_query()
        assert wq.question.primary == {"season_name": "2015-16"}
        assert wq.question.secondary == {"season_name": "2012-13"}


class TestWorkloadsRunnable:
    def test_nba_queries_execute(self, nba_small):
        db, _ = nba_small
        for workload in nba_queries():
            result = db.sql(workload.sql)
            assert result.num_rows > 0

    def test_mimic_queries_execute(self, mimic_small):
        db, _ = mimic_small
        for workload in mimic_queries():
            result = db.sql(workload.sql)
            assert result.num_rows > 0

    def test_question_tuples_exist(self, nba_small, mimic_small):
        from repro.db import ProvenanceTable

        for workload in all_queries():
            db, _ = nba_small if workload.dataset == "nba" else mimic_small
            pt = ProvenanceTable.compute(parse_sql(workload.sql), db)
            resolved = workload.question.resolve(pt)
            assert len(resolved.row_ids1) > 0
            assert len(resolved.row_ids2) > 0
