"""Tests for database scale-up / scale-down utilities."""

import pytest

from repro.datasets import scale_down_database, scale_up_database


class TestScaleUp:
    def test_rows_multiply(self, mini_db):
        scaled = scale_up_database(mini_db, 3)
        for name in mini_db.table_names:
            assert (
                scaled.table(name).num_rows
                == mini_db.table(name).num_rows * 3
            )

    def test_primary_keys_still_hold(self, mini_db):
        scaled = scale_up_database(mini_db, 2)
        for name in scaled.table_names:
            relation = scaled.table(name)
            pk = relation.schema.primary_key
            if not pk:
                continue
            keys = set()
            arrays = [relation.column(c) for c in pk]
            for i in range(relation.num_rows):
                key = tuple(arr[i] for arr in arrays)
                assert key not in keys
                keys.add(key)

    def test_join_sizes_scale_linearly(self, mini_db):
        scaled = scale_up_database(mini_db, 2)
        base = mini_db.sql(
            "SELECT COUNT(*) AS n FROM game g, player_game pg "
            "WHERE g.year = pg.year AND g.gameno = pg.gameno"
        ).to_dicts()[0]["n"]
        doubled = scaled.sql(
            "SELECT COUNT(*) AS n FROM game g, player_game pg "
            "WHERE g.year = pg.year AND g.gameno = pg.gameno"
        ).to_dicts()[0]["n"]
        assert doubled == base * 2

    def test_query_results_scale(self, mini_db):
        scaled = scale_up_database(mini_db, 2)
        wins = scaled.sql(
            "SELECT season, COUNT(*) AS n FROM game "
            "WHERE winner = 'GSW' GROUP BY season"
        ).to_dicts()
        # Text key columns get suffixed copies, but the non-key 'season'
        # and 'winner' values are preserved — counts double.
        by_season = {d["season"]: d["n"] for d in wins}
        assert by_season["2015-16"] == 12

    def test_factor_one_is_identity(self, mini_db):
        assert scale_up_database(mini_db, 1) is mini_db

    def test_bad_factor(self, mini_db):
        with pytest.raises(ValueError):
            scale_up_database(mini_db, 0)

    def test_foreign_keys_carried_over(self, mini_db):
        scaled = scale_up_database(mini_db, 2)
        assert len(scaled.foreign_keys) == len(mini_db.foreign_keys)


class TestScaleDown:
    def test_rows_shrink(self, nba_small):
        db, _ = nba_small
        scaled = scale_down_database(db, 0.5, seed=1)
        assert (
            scaled.table("game").num_rows <= db.table("game").num_rows
        )
        assert scaled.table("game").num_rows > 0

    def test_referential_integrity_preserved(self, nba_small):
        db, _ = nba_small
        scaled = scale_down_database(db, 0.4, seed=1)
        for fk in scaled.foreign_keys:
            child = scaled.table(fk.table)
            parent = scaled.table(fk.ref_table)
            if tuple(fk.ref_columns) != parent.schema.primary_key:
                continue
            parent_keys = {
                tuple(parent.column(c)[i] for c in fk.ref_columns)
                for i in range(parent.num_rows)
            }
            arrays = [child.column(c) for c in fk.columns]
            for i in range(child.num_rows):
                key = tuple(arr[i] for arr in arrays)
                assert key in parent_keys

    def test_fraction_one_is_identity(self, mini_db):
        assert scale_down_database(mini_db, 1.0) is mini_db

    def test_bad_fraction(self, mini_db):
        with pytest.raises(ValueError):
            scale_down_database(mini_db, 0.0)
        with pytest.raises(ValueError):
            scale_down_database(mini_db, 1.5)

    def test_deterministic(self, mini_db):
        a = scale_down_database(mini_db, 0.5, seed=3)
        b = scale_down_database(mini_db, 0.5, seed=3)
        for name in a.table_names:
            assert list(a.table(name).iter_rows()) == list(
                b.table(name).iter_rows()
            )
