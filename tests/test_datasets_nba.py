"""Tests for the synthetic NBA dataset generator."""

import numpy as np
import pytest

from repro.datasets import generate_nba, load_nba
from repro.datasets.nba import GSW_WINS, SEASONS, TEAMS


class TestSchema:
    def test_all_figure5_tables_present(self, nba_small):
        db, _ = nba_small
        expected = {
            "game", "team", "player", "player_salary", "play_for",
            "lineup", "lineup_player", "team_game_stats",
            "lineup_game_stats", "player_game_stats", "season",
        }
        assert set(db.table_names) == expected

    def test_foreign_keys_declared(self, nba_small):
        db, _ = nba_small
        fk_pairs = {(fk.table, fk.ref_table) for fk in db.foreign_keys}
        assert ("game", "team") in fk_pairs
        assert ("player_game_stats", "player") in fk_pairs
        assert ("lineup_player", "lineup") in fk_pairs

    def test_schema_graph_has_self_edge(self, nba_small):
        _, graph = nba_small
        self_edges = [e for e in graph.edges if e.is_self_edge]
        assert any(e.table_a == "lineup_player" for e in self_edges)

    def test_fk_integrity(self, nba_small):
        db, _ = nba_small
        for fk in db.foreign_keys:
            child = db.table(fk.table)
            parent = db.table(fk.ref_table)
            parent_keys = {
                tuple(parent.column(c)[i] for c in fk.ref_columns)
                for i in range(parent.num_rows)
            }
            for i in range(child.num_rows):
                key = tuple(child.column(c)[i] for c in fk.columns)
                assert key in parent_keys


class TestSignals:
    def test_gsw_win_curve_shape(self, nba_small):
        db, _ = nba_small
        result = db.sql(
            "SELECT COUNT(*) AS win, s.season_name FROM team t, game g, "
            "season s WHERE t.team_id = g.winner_id AND "
            "g.season_id = s.season_id AND t.team = 'GSW' "
            "GROUP BY s.season_name"
        )
        wins = {d["season_name"]: d["win"] for d in result.to_dicts()}
        # Shape: the 2015-16 peak beats the weak early seasons.
        assert wins["2015-16"] > wins["2011-12"]
        assert wins["2014-15"] > wins["2009-10"]

    def test_curry_scoring_jump(self, nba_small):
        db, _ = nba_small
        result = db.sql(
            "SELECT AVG(points) AS avg_pts, s.season_name "
            "FROM player p, player_game_stats pgs, game g, season s "
            "WHERE p.player_id = pgs.player_id AND "
            "g.game_date = pgs.game_date AND g.home_id = pgs.home_id AND "
            "s.season_id = g.season_id AND "
            "p.player_name = 'Stephen Curry' GROUP BY s.season_name"
        )
        avg = {d["season_name"]: d["avg_pts"] for d in result.to_dicts()}
        assert avg["2015-16"] > avg["2012-13"] + 4

    def test_jarrett_jack_only_2012_13_on_gsw(self, nba_small):
        db, _ = nba_small
        rows = db.sql(
            "SELECT date_start, date_end, t.team "
            "FROM play_for pf, player p, team t "
            "WHERE pf.player_id = p.player_id AND pf.team_id = t.team_id "
            "AND p.player_name = 'Jarrett Jack'"
        ).to_dicts()
        gsw = [r for r in rows if r["team"] == "GSW"]
        assert len(gsw) == 1
        assert gsw[0]["date_start"].startswith("2012")

    def test_green_salary_jump_2016_17(self, nba_small):
        db, _ = nba_small
        rows = db.sql(
            "SELECT salary, s.season_name FROM player_salary ps, player p, "
            "season s WHERE ps.player_id = p.player_id AND "
            "ps.season_id = s.season_id AND "
            "p.player_name = 'Draymond Green'"
        ).to_dicts()
        by_season = {r["season_name"]: r["salary"] for r in rows}
        assert by_season["2016-17"] > 14_260_870
        assert by_season["2015-16"] < 15_330_435


class TestScaling:
    def test_scale_multiplies_games(self):
        small = generate_nba(scale=0.12, seed=5)
        large = generate_nba(scale=0.25, seed=5)
        assert large.table("game").num_rows > small.table("game").num_rows
        ratio = (
            large.table("player_game_stats").num_rows
            / small.table("player_game_stats").num_rows
        )
        games_ratio = (
            large.table("game").num_rows / small.table("game").num_rows
        )
        assert ratio == pytest.approx(games_ratio, rel=0.05)

    def test_deterministic(self):
        a = generate_nba(scale=0.12, seed=9)
        b = generate_nba(scale=0.12, seed=9)
        assert list(a.table("game").iter_rows()) == list(
            b.table("game").iter_rows()
        )

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_nba(scale=0.0)

    def test_load_returns_graph(self):
        db, graph = load_nba(scale=0.12, seed=5)
        assert set(graph.tables) == set(db.table_names)
