"""Unit tests for §3.1 attribute clustering + relevance filtering."""

import numpy as np
import pytest

from repro.core import (
    CajadeConfig,
    ComparisonQuestion,
    QualityEvaluator,
    filter_attributes,
    materialize_apt,
)
from repro.db import ProvenanceTable, parse_sql
from tests.conftest import GSW_WINS_SQL
from tests.test_core_apt import star_join_graph


@pytest.fixture()
def setup(mini_db):
    pt = ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)
    question = ComparisonQuestion(
        {"season": "2015-16"}, {"season": "2012-13"}
    )
    resolved = question.resolve(pt)
    apt = materialize_apt(star_join_graph(), pt, mini_db)
    evaluator = QualityEvaluator(apt, resolved.row_ids1, resolved.row_ids2)
    return apt, evaluator


class TestFilterAttributes:
    def test_keeps_discriminative_attributes(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=2, seed=0)
        filtered = filter_attributes(apt, evaluator, config, rng)
        # pts separates the two seasons strongly (Curry 30+ vs 20).
        assert "player_game.pts" in filtered.numeric

    def test_respects_count(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=2, seed=0)
        filtered = filter_attributes(apt, evaluator, config, rng)
        # At most 2 + a possible categorical fallback.
        assert len(filtered.numeric) + len(filtered.categorical) <= 3

    def test_categorical_fallback_present(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=1, seed=0)
        filtered = filter_attributes(apt, evaluator, config, rng)
        assert filtered.categorical  # LCA phase needs one

    def test_passthrough_when_disabled(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(use_feature_selection=False)
        filtered = filter_attributes(apt, evaluator, config, rng)
        assert set(filtered.numeric) | set(filtered.categorical) == {
            a.name for a in apt.attributes
        }

    def test_relevance_scores_present(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=3, seed=0)
        filtered = filter_attributes(apt, evaluator, config, rng)
        assert filtered.relevance
        assert all(v >= 0 for v in filtered.relevance.values())

    def test_clusters_cover_all_attributes(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=3, seed=0)
        filtered = filter_attributes(apt, evaluator, config, rng)
        clustered = {m for c in filtered.clusters for m in c.members}
        assert clustered == {a.name for a in apt.attributes}

    def test_all_selected_sorted(self, setup, rng):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=4, seed=0)
        filtered = filter_attributes(apt, evaluator, config, rng)
        combined = filtered.all_selected
        assert combined == sorted(filtered.numeric) + sorted(
            filtered.categorical
        )

    def test_deterministic(self, setup):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=3, seed=0)
        f1 = filter_attributes(
            apt, evaluator, config, np.random.default_rng(7)
        )
        f2 = filter_attributes(
            apt, evaluator, config, np.random.default_rng(7)
        )
        assert f1.numeric == f2.numeric
        assert f1.categorical == f2.categorical


class TestGroupDeterminedGuard:
    """The §8 FD guard: drop attributes that alias the group key."""

    def test_is_group_determined_helper(self):
        import numpy as np
        from repro.core.attribute_filter import _is_group_determined

        labels = np.array([1, 1, 1, 2, 2], dtype=np.int64)
        alias = np.array(["era1", "era1", "era1", "era2", "era2"], dtype=object)
        varying = np.array(["a", "b", "a", "c", "c"], dtype=object)
        shared = np.array(["x", "x", "x", "x", "x"], dtype=object)
        assert _is_group_determined(alias, labels)
        assert not _is_group_determined(varying, labels)
        assert not _is_group_determined(shared, labels)  # same constant

    def test_guard_drops_alias_attribute_end_to_end(self, rng):
        import numpy as np
        from repro.db import ColumnType, Database, ProvenanceTable, TableSchema, parse_sql
        from repro.core import (
            CajadeConfig, ComparisonQuestion, QualityEvaluator,
            filter_attributes, materialize_apt,
        )
        from repro.core.join_graph import JoinGraph

        db = Database("fd")
        rows = []
        for i in range(40):
            season = "s1" if i < 20 else "s2"
            era = "early" if season == "s1" else "late"  # aliases season
            rows.append((i, season, era, f"opp{i % 4}", i % 7))
        db.create_table(
            TableSchema.build(
                "game",
                {
                    "gid": ColumnType.INT,
                    "season": ColumnType.TEXT,
                    "era": ColumnType.TEXT,
                    "opponent": ColumnType.TEXT,
                    "margin": ColumnType.INT,
                },
                primary_key=("gid",),
            ),
            rows,
        )
        query = parse_sql(
            "SELECT season, COUNT(*) AS n FROM game GROUP BY season"
        )
        pt = ProvenanceTable.compute(query, db)
        resolved = ComparisonQuestion(
            {"season": "s1"}, {"season": "s2"}
        ).resolve(pt)
        apt = materialize_apt(JoinGraph.initial({"game": "game"}), pt, db)
        evaluator = QualityEvaluator(
            apt, resolved.row_ids1, resolved.row_ids2
        )
        guarded = filter_attributes(
            apt, evaluator,
            CajadeConfig(num_selected_attrs=6, exclude_group_determined=True),
            rng,
        )
        unguarded = filter_attributes(
            apt, evaluator,
            CajadeConfig(num_selected_attrs=6, exclude_group_determined=False),
            rng,
        )
        assert "game.era" not in guarded.all_selected
        assert "game.era" in unguarded.all_selected
        assert "game.opponent" in guarded.all_selected

    def test_guard_keeps_varying_attributes(self, setup, rng):
        from repro.core import CajadeConfig, filter_attributes

        apt, evaluator = setup
        filtered = filter_attributes(
            apt, evaluator,
            CajadeConfig(num_selected_attrs=6, exclude_group_determined=True),
            rng,
        )
        # pts varies within each side → must survive the guard.
        assert "player_game.pts" in filtered.all_selected


class TestHistForestKnob:
    """`use_hist_forest` swaps the learner, never the answer: the
    histogram forest is a bitwise twin of the reference forest, so the
    selected attributes and relevance scores match exactly."""

    def _filter(self, setup, **knobs):
        apt, evaluator = setup
        config = CajadeConfig(num_selected_attrs=2, seed=0, **knobs)
        return filter_attributes(
            apt, evaluator, config, np.random.default_rng(1234)
        )

    def test_on_off_identical_selection(self, setup):
        on = self._filter(setup, use_hist_forest=True)
        off = self._filter(setup, use_hist_forest=False)
        assert on.numeric == off.numeric
        assert on.categorical == off.categorical
        assert on.relevance == off.relevance  # exact float equality

    def test_hist_counters_recorded(self, setup):
        from repro.core.timing import (
            HIST_HISTOGRAMS_BUILT,
            HIST_NODES_GROWN,
            HIST_SPLITS_EVALUATED,
            StepTimer,
        )

        apt, evaluator = setup
        timer = StepTimer()
        filter_attributes(
            apt, evaluator,
            CajadeConfig(num_selected_attrs=2, seed=0),
            np.random.default_rng(1234),
            timer=timer,
        )
        assert timer.counter(HIST_NODES_GROWN) > 0
        assert timer.counter(HIST_HISTOGRAMS_BUILT) > 0
        assert timer.counter(HIST_SPLITS_EVALUATED) > 0
