"""Unit tests for the database catalog."""

import pytest

from repro.db import (
    CatalogError,
    ColumnType,
    Database,
    Relation,
    SchemaError,
    TableSchema,
)


@pytest.fixture()
def db() -> Database:
    d = Database("cat")
    d.create_table(
        TableSchema.build(
            "team", {"team_id": ColumnType.INT, "team": ColumnType.TEXT},
            primary_key=("team_id",),
        ),
        [(0, "GSW"), (1, "LAL")],
    )
    d.create_table(
        TableSchema.build(
            "game",
            {"gid": ColumnType.INT, "winner_id": ColumnType.INT},
            primary_key=("gid",),
        ),
        [(0, 0), (1, 1), (2, 0)],
    )
    return d


class TestCatalog:
    def test_table_lookup(self, db):
        assert db.table("team").num_rows == 2
        assert db.has_table("game")
        assert "team" in db
        assert db.table_names == ["game", "team"]

    def test_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.table("nope")

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema.build("team", {"x": ColumnType.INT}), []
            )

    def test_add_relation_replace(self, db):
        replacement = Relation.from_rows(
            TableSchema.build("team", {"team_id": ColumnType.INT}),
            [(5,)],
        )
        with pytest.raises(SchemaError):
            db.add_relation(replacement)
        db.add_relation(replacement, replace=True)
        assert db.table("team").num_rows == 1

    def test_drop_table(self, db):
        db.add_foreign_key("game", ("winner_id",), "team", ("team_id",))
        db.drop_table("game")
        assert not db.has_table("game")
        assert db.foreign_keys == []

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.drop_table("nope")

    def test_total_rows(self, db):
        assert db.total_rows() == 5

    def test_repr_mentions_tables(self, db):
        assert "team(2)" in repr(db)


class TestForeignKeys:
    def test_add_and_query(self, db):
        fk = db.add_foreign_key("game", ("winner_id",), "team", ("team_id",))
        assert fk.ref_table == "team"
        assert db.foreign_keys_of("game") == [fk]
        assert db.foreign_keys_of("team") == []

    def test_missing_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add_foreign_key("game", ("nope",), "team", ("team_id",))
        with pytest.raises(SchemaError):
            db.add_foreign_key("game", ("winner_id",), "team", ("nope",))


class TestStatisticsCache:
    def test_cached(self, db):
        stats1 = db.statistics("team")
        stats2 = db.statistics("team")
        assert stats1 is stats2

    def test_invalidate(self, db):
        stats1 = db.statistics("team")
        db.invalidate_statistics()
        assert db.statistics("team") is not stats1

    def test_replace_invalidates(self, db):
        stats1 = db.statistics("team")
        db.add_relation(db.table("team"), replace=True)
        assert db.statistics("team") is not stats1


class TestSqlShortcut:
    def test_sql(self, db):
        result = db.sql(
            "SELECT winner_id, COUNT(*) AS n FROM game GROUP BY winner_id"
        )
        assert {d["winner_id"]: d["n"] for d in result.to_dicts()} == {
            0: 2, 1: 1,
        }
