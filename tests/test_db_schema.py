"""Unit tests for repro.db.schema."""

import pytest

from repro.db import Column, ColumnType, ForeignKey, SchemaError, TableSchema


class TestColumn:
    def test_valid_names(self):
        Column("points", ColumnType.INT)
        Column("g.home_id", ColumnType.INT)  # alias-qualified

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.INT)
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)


class TestForeignKey:
    def test_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", ("x", "y"), "b", ("z",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", (), "b", ())


class TestTableSchema:
    def build(self) -> TableSchema:
        return TableSchema.build(
            "game",
            {"year": ColumnType.INT, "home": ColumnType.TEXT},
            primary_key=("year", "home"),
        )

    def test_column_names_ordered(self):
        assert self.build().column_names == ["year", "home"]

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="t",
                columns=[Column("a", ColumnType.INT), Column("a", ColumnType.INT)],
            )

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema.build("t", {"a": ColumnType.INT}, primary_key=("b",))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="", columns=[])

    def test_column_lookup(self):
        schema = self.build()
        assert schema.column("home").ctype == ColumnType.TEXT
        assert schema.column_type("year") == ColumnType.INT
        assert schema.column_index("home") == 1
        assert schema.has_column("year")
        assert not schema.has_column("nope")

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            self.build().column("nope")

    def test_rename_keeps_columns(self):
        renamed = self.build().rename("match")
        assert renamed.name == "match"
        assert renamed.column_names == ["year", "home"]
        assert renamed.primary_key == ("year", "home")

    def test_project_subsets_pk(self):
        projected = self.build().project(["home"])
        assert projected.column_names == ["home"]
        assert projected.primary_key == ("home",)

    def test_project_preserves_order(self):
        projected = self.build().project(["home", "year"])
        assert projected.column_names == ["home", "year"]
