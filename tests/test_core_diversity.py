"""Unit tests for diversity reranking (§3.5)."""

import pytest

from repro.core import (
    Pattern,
    dissimilarity,
    match_score,
    select_diverse_top_k,
    wscore,
)
from repro.core.diversity import (
    MATCH_DIFFERENT_CONSTANT,
    MATCH_FREE,
    MATCH_SAME_CONSTANT,
)
from repro.core.pattern import OP_EQ, OP_GE


def pat(**kwargs) -> Pattern:
    return Pattern.from_dict({k: (OP_EQ, v) for k, v in kwargs.items()})


class TestMatchScore:
    def test_attribute_free_in_other(self):
        assert match_score(pat(a="x"), pat(b="y"), "a") == MATCH_FREE

    def test_same_constant_heavy_penalty(self):
        assert (
            match_score(pat(a="x"), pat(a="x"), "a") == MATCH_SAME_CONSTANT
        )

    def test_different_constant_light_penalty(self):
        assert (
            match_score(pat(a="x"), pat(a="y"), "a")
            == MATCH_DIFFERENT_CONSTANT
        )


class TestDissimilarity:
    def test_range(self):
        combos = [
            (pat(a="x"), pat(a="x")),
            (pat(a="x"), pat(a="y")),
            (pat(a="x"), pat(b="z")),
            (pat(a="x", b="y"), pat(a="x", c="q")),
        ]
        for phi, other in combos:
            assert -2.0 <= dissimilarity(phi, other) <= 1.0

    def test_identical_patterns_minimum(self):
        assert dissimilarity(pat(a="x"), pat(a="x")) == -2.0

    def test_disjoint_patterns_maximum(self):
        assert dissimilarity(pat(a="x"), pat(b="y")) == 1.0

    def test_empty_pattern(self):
        assert dissimilarity(Pattern(), pat(a="x")) == 1.0

    def test_averaged_over_phi_attributes(self):
        phi = pat(a="x", b="y")
        other = pat(a="x")  # a: same constant (-2), b: free (+1)
        assert dissimilarity(phi, other) == pytest.approx(-0.5)


class TestWscore:
    def test_no_selection_is_fscore(self):
        assert wscore(pat(a="x"), 0.8, []) == 0.8

    def test_penalized_by_most_similar(self):
        selected = [pat(a="x"), pat(b="z")]
        # vs pat(a="x"): -2; vs pat(b="z"): +1 → min is -2.
        assert wscore(pat(a="x"), 0.8, selected) == pytest.approx(-1.2)


class TestSelectDiverseTopK:
    def test_highest_fscore_first(self):
        candidates = [
            (pat(a="x"), 0.5, "low"),
            (pat(b="y"), 0.9, "high"),
        ]
        chosen = select_diverse_top_k(candidates, 2)
        assert chosen[0][2] == "high"

    def test_prefers_diverse_runner_up(self):
        near_duplicate = pat(a="x")
        duplicate2 = Pattern.from_dict(
            {"a": (OP_EQ, "x"), "b": (OP_GE, 1)}
        )
        different = pat(c="z")
        candidates = [
            (near_duplicate, 0.9, 1),
            (duplicate2, 0.85, 2),
            (different, 0.6, 3),
        ]
        chosen = select_diverse_top_k(candidates, 2)
        assert [c[2] for c in chosen] == [1, 3]

    def test_k_larger_than_pool(self):
        candidates = [(pat(a="x"), 0.5, None)]
        assert len(select_diverse_top_k(candidates, 10)) == 1

    def test_empty_pool(self):
        assert select_diverse_top_k([], 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            select_diverse_top_k([], 0)

    def test_deterministic_tiebreak(self):
        candidates = [
            (pat(a="x"), 0.5, "ax"),
            (pat(a="w"), 0.5, "aw"),
        ]
        chosen = select_diverse_top_k(candidates, 1)
        assert chosen[0][2] == "aw"  # alphabetical describe() tiebreak
