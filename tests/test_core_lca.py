"""Unit tests for LCA candidate generation (§3.2)."""

import numpy as np
import pytest

from repro.core import CajadeConfig, Pattern, lca_candidates, pick_top_candidates
from repro.core.pattern import OP_EQ


@pytest.fixture()
def columns() -> dict:
    player = ["Curry"] * 6 + ["Green"] * 4
    home = ["GSW", "LAL"] * 5
    return {
        "player": np.array(player, dtype=object),
        "home": np.array(home, dtype=object),
        "pts": np.arange(10).astype(float),
    }


def config(**kwargs) -> CajadeConfig:
    defaults = dict(lca_sample_rate=1.0, lca_sample_cap=1000)
    defaults.update(kwargs)
    return CajadeConfig(**defaults)


class TestLcaCandidates:
    def test_frequent_constants_surface(self, columns, rng):
        patterns = lca_candidates(
            columns, ["player", "home"], config(), rng
        )
        descriptions = {p.describe() for p in patterns}
        assert "player=Curry" in descriptions
        assert "home=GSW" in descriptions

    def test_pairwise_lca_agreement_only(self, columns, rng):
        patterns = lca_candidates(columns, ["player", "home"], config(), rng)
        combined = Pattern.from_dict(
            {"player": (OP_EQ, "Curry"), "home": (OP_EQ, "GSW")}
        )
        assert combined in patterns

    def test_numeric_attrs_ignored(self, columns, rng):
        patterns = lca_candidates(
            columns, ["player", "home", "pts"], config(), rng
        )
        for pattern in patterns:
            assert "pts" not in pattern.attributes

    def test_empty_without_categorical(self, columns, rng):
        assert lca_candidates(columns, [], config(), rng) == []
        assert lca_candidates(columns, ["missing"], config(), rng) == []

    def test_no_empty_pattern(self, columns, rng):
        patterns = lca_candidates(columns, ["player"], config(), rng)
        assert all(p.size >= 1 for p in patterns)

    def test_null_values_skipped(self, rng):
        cols = {"a": np.array([None, None, "x"], dtype=object)}
        patterns = lca_candidates(cols, ["a"], config(), rng)
        assert {p.describe() for p in patterns} == {"a=x"}

    def test_sample_cap_respected(self, rng):
        n = 5000
        cols = {"a": np.array(["v"] * n, dtype=object)}
        cfg = config(lca_sample_rate=1.0, lca_sample_cap=50, lca_pair_cap=100)
        patterns = lca_candidates(cols, ["a"], cfg, rng)
        assert {p.describe() for p in patterns} == {"a=v"}

    def test_deterministic_given_rng(self, columns):
        r1 = lca_candidates(
            columns, ["player", "home"], config(), np.random.default_rng(3)
        )
        r2 = lca_candidates(
            columns, ["player", "home"], config(), np.random.default_rng(3)
        )
        assert r1 == r2


class TestPickTopCandidates:
    def test_filters_by_recall_and_ranks(self):
        p_high = Pattern.from_dict({"a": (OP_EQ, "hi")})
        p_mid = Pattern.from_dict({"a": (OP_EQ, "mid")})
        p_low = Pattern.from_dict({"a": (OP_EQ, "lo")})
        recalls = {p_high: 0.9, p_mid: 0.5, p_low: 0.05}
        picked = pick_top_candidates(
            [p_low, p_mid, p_high], lambda p: recalls[p], k_cat=2,
            recall_threshold=0.1,
        )
        assert picked == [p_high, p_mid]

    def test_k_cat_truncates(self):
        patterns = [
            Pattern.from_dict({"a": (OP_EQ, f"v{i}")}) for i in range(10)
        ]
        picked = pick_top_candidates(
            patterns, lambda p: 1.0, k_cat=3, recall_threshold=0.0
        )
        assert len(picked) == 3

    def test_all_below_threshold(self):
        patterns = [Pattern.from_dict({"a": (OP_EQ, "v")})]
        assert (
            pick_top_candidates(patterns, lambda p: 0.01, 5, 0.5) == []
        )
