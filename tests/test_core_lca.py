"""Unit tests for LCA candidate generation (§3.2).

Covers the object-based reference path, the code-based path on kernel
dictionary codes, and their equivalence: same deduplicated pattern set
(hypothesis property, incl. NULL/NaN columns, the sampled-pair cap path
and singleton rows) from the same rng trajectory.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CajadeConfig,
    MiningKernel,
    Pattern,
    lca_candidates,
    lca_candidates_codes,
    pick_top_candidates,
)
from repro.core.pattern import OP_EQ
from repro.core.timing import (
    LCA_PAIRS_EXAMINED,
    LCA_PATTERNS_BUILT,
    StepTimer,
)


@pytest.fixture()
def columns() -> dict:
    player = ["Curry"] * 6 + ["Green"] * 4
    home = ["GSW", "LAL"] * 5
    return {
        "player": np.array(player, dtype=object),
        "home": np.array(home, dtype=object),
        "pts": np.arange(10).astype(float),
    }


def config(**kwargs) -> CajadeConfig:
    defaults = dict(lca_sample_rate=1.0, lca_sample_cap=1000)
    defaults.update(kwargs)
    return CajadeConfig(**defaults)


class TestLcaCandidates:
    def test_frequent_constants_surface(self, columns, rng):
        patterns = lca_candidates(
            columns, ["player", "home"], config(), rng
        )
        descriptions = {p.describe() for p in patterns}
        assert "player=Curry" in descriptions
        assert "home=GSW" in descriptions

    def test_pairwise_lca_agreement_only(self, columns, rng):
        patterns = lca_candidates(columns, ["player", "home"], config(), rng)
        combined = Pattern.from_dict(
            {"player": (OP_EQ, "Curry"), "home": (OP_EQ, "GSW")}
        )
        assert combined in patterns

    def test_numeric_attrs_ignored(self, columns, rng):
        patterns = lca_candidates(
            columns, ["player", "home", "pts"], config(), rng
        )
        for pattern in patterns:
            assert "pts" not in pattern.attributes

    def test_empty_without_categorical(self, columns, rng):
        assert lca_candidates(columns, [], config(), rng) == []
        assert lca_candidates(columns, ["missing"], config(), rng) == []

    def test_no_empty_pattern(self, columns, rng):
        patterns = lca_candidates(columns, ["player"], config(), rng)
        assert all(p.size >= 1 for p in patterns)

    def test_null_values_skipped(self, rng):
        cols = {"a": np.array([None, None, "x"], dtype=object)}
        patterns = lca_candidates(cols, ["a"], config(), rng)
        assert {p.describe() for p in patterns} == {"a=x"}

    def test_sample_cap_respected(self, rng):
        n = 5000
        cols = {"a": np.array(["v"] * n, dtype=object)}
        cfg = config(lca_sample_rate=1.0, lca_sample_cap=50, lca_pair_cap=100)
        patterns = lca_candidates(cols, ["a"], cfg, rng)
        assert {p.describe() for p in patterns} == {"a=v"}

    def test_deterministic_given_rng(self, columns):
        r1 = lca_candidates(
            columns, ["player", "home"], config(), np.random.default_rng(3)
        )
        r2 = lca_candidates(
            columns, ["player", "home"], config(), np.random.default_rng(3)
        )
        assert r1 == r2


def kernel_for(columns: dict) -> MiningKernel:
    """A kernel over row-aligned columns; slot layout is irrelevant to
    candidate generation."""
    n = len(next(iter(columns.values()))) if columns else 0
    return MiningKernel(columns, np.arange(n), m1=n, m2=0, cache_mb=1.0)


def both_paths(columns, attrs, cfg, seed=9):
    """(reference, code-based) candidate lists from identical rng state."""
    reference = lca_candidates(
        columns, attrs, cfg, np.random.default_rng(seed)
    )
    coded = lca_candidates_codes(
        kernel_for(columns), attrs, cfg, np.random.default_rng(seed)
    )
    return reference, coded


# Two identity-distinct NaN objects: under pattern-match semantics each
# is its own dictionary entry (NaN != NaN), exactly like the object path.
NAN_A = float("nan")
NAN_B = float("nan")
CELLS = ("x", "y", "z", None, NAN_A, NAN_B)

columns_strategy = st.integers(min_value=1, max_value=3).flatmap(
    lambda n_attrs: st.lists(
        st.tuples(*[st.sampled_from(CELLS)] * n_attrs),
        min_size=1,
        max_size=40,
    )
)


def columns_from(rows: list[tuple]) -> dict:
    n_attrs = len(rows[0])
    return {
        f"a{k}": np.array([r[k] for r in rows], dtype=object)
        for k in range(n_attrs)
    }


class TestCodeLcaEquivalence:
    def test_fixture_identical(self, columns):
        reference, coded = both_paths(
            columns, ["player", "home"], config()
        )
        assert reference == coded

    @given(rows=columns_strategy)
    @settings(max_examples=60, deadline=None)
    def test_property_full_pairs(self, rows):
        cols = columns_from(rows)
        reference, coded = both_paths(cols, sorted(cols), config())
        assert len(reference) == len(coded)
        assert set(reference) == set(coded)

    @given(rows=columns_strategy, seed=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_property_sampled_pair_cap(self, rows, seed):
        """The rng-driven pair sample path: both paths must draw the
        same pairs from the same generator state."""
        cfg = config(lca_sample_rate=0.7, lca_pair_cap=5)
        cols = columns_from(rows)
        reference, coded = both_paths(cols, sorted(cols), cfg, seed=seed)
        assert len(reference) == len(coded)
        assert set(reference) == set(coded)

    def test_singleton_row(self):
        cols = {
            "a": np.array(["only"], dtype=object),
            "b": np.array([None], dtype=object),
        }
        reference, coded = both_paths(cols, ["a", "b"], config())
        assert reference == coded
        assert {p.describe() for p in coded} == {"a=only"}

    def test_nan_cells_match_object_semantics(self):
        """NaN is a legal singleton constant (``is not None``) but never
        agrees pairwise (NaN != NaN) — both paths replicate that."""
        cols = {"a": np.array([NAN_A, NAN_A, "v", "v"], dtype=object)}
        reference, coded = both_paths(cols, ["a"], config())
        assert len(reference) == len(coded) == 2
        assert set(reference) == set(coded)
        describes = sorted(p.describe() for p in coded)
        assert describes == ["a=nan", "a=v"]

    def test_sample_cap_rng_trajectory(self):
        """Row sampling consumes the rng identically in both paths."""
        n = 200
        values = np.array(
            [f"v{i % 7}" for i in range(n)], dtype=object
        )
        cols = {"a": values}
        cfg = config(lca_sample_rate=1.0, lca_sample_cap=20)
        r1, r2 = np.random.default_rng(4), np.random.default_rng(4)
        reference = lca_candidates(cols, ["a"], cfg, r1)
        coded = lca_candidates_codes(kernel_for(cols), ["a"], cfg, r2)
        assert reference == coded
        # identical post-call generator state
        assert r1.integers(0, 10**9) == r2.integers(0, 10**9)

    def test_numeric_attrs_ignored(self, columns, rng):
        coded = lca_candidates_codes(
            kernel_for(columns), ["player", "home", "pts"], config(), rng
        )
        assert all("pts" not in p.attributes for p in coded)

    def test_counters_recorded(self, columns):
        timer = StepTimer()
        coded = lca_candidates_codes(
            kernel_for(columns),
            ["player", "home"],
            config(),
            np.random.default_rng(0),
            timer=timer,
        )
        assert timer.counter(LCA_PAIRS_EXAMINED) == 10 * 9 // 2
        # code path constructs Patterns only for deduplicated survivors
        assert timer.counter(LCA_PATTERNS_BUILT) == len(coded)
        ref_timer = StepTimer()
        lca_candidates(
            columns,
            ["player", "home"],
            config(),
            np.random.default_rng(0),
            timer=ref_timer,
        )
        assert ref_timer.counter(LCA_PAIRS_EXAMINED) == 10 * 9 // 2
        assert ref_timer.counter(LCA_PATTERNS_BUILT) >= len(coded)


class TestCodeLcaConfig:
    def test_cli_flag(self):
        from repro.cli import _config_from, build_parser

        args = build_parser().parse_args(
            ["workload", "Qnba1", "--no-code-lca"]
        )
        assert _config_from(args).use_code_lca is False
        args = build_parser().parse_args(["workload", "Qnba1"])
        assert _config_from(args).use_code_lca is True


class TestPickTopCandidates:
    def test_filters_by_recall_and_ranks(self):
        p_high = Pattern.from_dict({"a": (OP_EQ, "hi")})
        p_mid = Pattern.from_dict({"a": (OP_EQ, "mid")})
        p_low = Pattern.from_dict({"a": (OP_EQ, "lo")})
        recalls = {p_high: 0.9, p_mid: 0.5, p_low: 0.05}
        picked = pick_top_candidates(
            [p_low, p_mid, p_high], lambda p: recalls[p], k_cat=2,
            recall_threshold=0.1,
        )
        assert picked == [p_high, p_mid]

    def test_k_cat_truncates(self):
        patterns = [
            Pattern.from_dict({"a": (OP_EQ, f"v{i}")}) for i in range(10)
        ]
        picked = pick_top_candidates(
            patterns, lambda p: 1.0, k_cat=3, recall_threshold=0.0
        )
        assert len(picked) == 3

    def test_all_below_threshold(self):
        patterns = [Pattern.from_dict({"a": (OP_EQ, "v")})]
        assert (
            pick_top_candidates(patterns, lambda p: 0.01, 5, 0.5) == []
        )
