"""Unit tests for the query executor (joins, grouping, aggregates)."""

import numpy as np
import pytest

from repro.db import (
    ColumnType,
    Database,
    ExecutionError,
    Relation,
    TableSchema,
    parse_sql,
)
from repro.db.executor import cross_product, execute, hash_join, working_table


def rel(name, cols, rows, pk=()):
    return Relation.from_rows(
        TableSchema.build(name, cols, primary_key=pk), rows
    )


@pytest.fixture()
def db() -> Database:
    d = Database("t")
    d.add_relation(
        rel(
            "orders",
            {"oid": ColumnType.INT, "cid": ColumnType.INT, "amount": ColumnType.FLOAT},
            [(1, 10, 5.0), (2, 10, 7.0), (3, 20, 1.0), (4, 99, 2.0)],
            pk=("oid",),
        )
    )
    d.add_relation(
        rel(
            "customers",
            {"cid": ColumnType.INT, "city": ColumnType.TEXT},
            [(10, "NYC"), (20, "LA"), (30, "SF")],
            pk=("cid",),
        )
    )
    return d


class TestHashJoin:
    def test_inner_join_matches(self, db):
        left = db.table("orders").prefix_columns("o.")
        right = db.table("customers").prefix_columns("c.")
        joined = hash_join(left, right, [("o.cid", "c.cid")])
        assert joined.num_rows == 3  # order 4 has no customer

    def test_join_is_symmetric_in_size(self, db):
        left = db.table("orders").prefix_columns("o.")
        right = db.table("customers").prefix_columns("c.")
        a = hash_join(left, right, [("o.cid", "c.cid")])
        b = hash_join(right, left, [("c.cid", "o.cid")])
        assert a.num_rows == b.num_rows

    def test_duplicate_columns_rejected(self, db):
        left = db.table("orders")
        with pytest.raises(ExecutionError):
            hash_join(left, left, [("cid", "cid")])

    def test_null_keys_never_match(self):
        left = rel("l", {"l.k": ColumnType.FLOAT}, [(1.0,), (None,)])
        right = rel("r", {"r.k": ColumnType.FLOAT}, [(1.0,), (None,)])
        joined = hash_join(left, right, [("l.k", "r.k")])
        assert joined.num_rows == 1

    def test_requires_condition(self, db):
        with pytest.raises(ExecutionError):
            hash_join(
                db.table("orders").prefix_columns("o."),
                db.table("customers").prefix_columns("c."),
                [],
            )

    def test_matches_nested_loop_semantics(self, rng):
        n, m = 40, 30
        left_rows = [(int(rng.integers(0, 8)),) for _ in range(n)]
        right_rows = [(int(rng.integers(0, 8)),) for _ in range(m)]
        left = rel("l", {"l.k": ColumnType.INT}, left_rows)
        right = rel("r", {"r.k": ColumnType.INT}, right_rows)
        joined = hash_join(left, right, [("l.k", "r.k")])
        expected = sum(
            1 for (a,) in left_rows for (b,) in right_rows if a == b
        )
        assert joined.num_rows == expected


class TestCrossProduct:
    def test_size(self, db):
        left = db.table("orders").prefix_columns("o.")
        right = db.table("customers").prefix_columns("c.")
        assert cross_product(left, right).num_rows == 12


class TestWorkingTable:
    def test_columns_are_alias_qualified(self, db):
        q = parse_sql(
            "SELECT city, COUNT(*) AS n FROM orders o, customers c "
            "WHERE o.cid = c.cid GROUP BY city"
        )
        work = working_table(q, db)
        assert "o.amount" in work.column_names
        assert "c.city" in work.column_names
        assert work.num_rows == 3

    def test_filter_pushdown_result(self, db):
        q = parse_sql(
            "SELECT city, COUNT(*) AS n FROM orders o, customers c "
            "WHERE o.cid = c.cid AND c.city = 'NYC' GROUP BY city"
        )
        assert working_table(q, db).num_rows == 2

    def test_no_join_condition_cross_product(self, db):
        q = parse_sql(
            "SELECT COUNT(*) AS n FROM orders o, customers c"
        )
        assert working_table(q, db).num_rows == 12

    def test_residual_predicate(self, db):
        q = parse_sql(
            "SELECT COUNT(*) AS n FROM orders o, customers c "
            "WHERE o.cid = c.cid AND o.amount > 4"
        )
        assert working_table(q, db).num_rows == 2


class TestAggregation:
    def test_count_star(self, db):
        result = execute(
            parse_sql(
                "SELECT city, COUNT(*) AS n FROM orders o, customers c "
                "WHERE o.cid = c.cid GROUP BY city"
            ),
            db,
        )
        rows = {d["city"]: d["n"] for d in result.to_dicts()}
        assert rows == {"NYC": 2, "LA": 1}

    def test_sum_avg_min_max(self, db):
        result = execute(
            parse_sql(
                "SELECT cid, SUM(amount) AS s, AVG(amount) AS a, "
                "MIN(amount) AS lo, MAX(amount) AS hi "
                "FROM orders GROUP BY cid"
            ),
            db,
        )
        by_cid = {d["cid"]: d for d in result.to_dicts()}
        assert by_cid[10]["s"] == 12.0
        assert by_cid[10]["a"] == 6.0
        assert by_cid[10]["lo"] == 5.0
        assert by_cid[10]["hi"] == 7.0

    def test_arithmetic_over_aggregates(self, db):
        result = execute(
            parse_sql(
                "SELECT cid, 1.0 * SUM(amount) / COUNT(*) AS rate "
                "FROM orders GROUP BY cid"
            ),
            db,
        )
        by_cid = {d["cid"]: d["rate"] for d in result.to_dicts()}
        assert by_cid[10] == pytest.approx(6.0)

    def test_global_aggregate_no_group_by(self, db):
        result = execute(
            parse_sql("SELECT COUNT(*) AS n FROM orders"), db
        )
        assert result.to_dicts() == [{"n": 4}]

    def test_group_counts_partition_input(self, db):
        result = execute(
            parse_sql("SELECT cid, COUNT(*) AS n FROM orders GROUP BY cid"),
            db,
        )
        assert sum(d["n"] for d in result.to_dicts()) == 4

    def test_pure_projection(self, db):
        result = execute(
            parse_sql("SELECT city FROM customers"), db
        )
        assert sorted(d["city"] for d in result.to_dicts()) == [
            "LA", "NYC", "SF",
        ]

    def test_mini_db_example(self, mini_db):
        result = mini_db.sql(
            "SELECT winner AS team, season, COUNT(*) AS win FROM game g "
            "WHERE winner = 'GSW' GROUP BY winner, season"
        )
        wins = {d["season"]: d["win"] for d in result.to_dicts()}
        assert wins == {"2012-13": 3, "2015-16": 6}
