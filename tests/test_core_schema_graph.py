"""Unit tests for schema graphs."""

import pytest

from repro.core import JoinConditionSpec, SchemaGraph
from repro.core.schema_graph import SchemaEdge
from repro.db import SchemaError


class TestJoinConditionSpec:
    def test_flip(self):
        cond = JoinConditionSpec((("a", "x"), ("b", "y")))
        assert cond.flipped().pairs == (("x", "a"), ("y", "b"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            JoinConditionSpec(())

    def test_describe(self):
        cond = JoinConditionSpec((("a", "x"),))
        assert cond.describe("L", "R") == "L.a = R.x"


class TestSchemaEdge:
    def edge(self) -> SchemaEdge:
        return SchemaEdge(
            "game", "team", (JoinConditionSpec((("winner_id", "team_id"),)),)
        )

    def test_other_side(self):
        assert self.edge().other_side("game") == "team"
        assert self.edge().other_side("team") == "game"
        with pytest.raises(SchemaError):
            self.edge().other_side("nope")

    def test_conditions_from_orientation(self):
        edge = self.edge()
        from_game = edge.conditions_from("game")[0]
        assert from_game.pairs == (("winner_id", "team_id"),)
        from_team = edge.conditions_from("team")[0]
        assert from_team.pairs == (("team_id", "winner_id"),)

    def test_self_edge_both_orientations(self):
        edge = SchemaEdge(
            "lp", "lp", (JoinConditionSpec((("a", "b"),)),)
        )
        oriented = edge.conditions_from("lp")
        assert len(oriented) == 2  # asymmetric condition → both directions

    def test_symmetric_self_edge_single(self):
        edge = SchemaEdge(
            "lp", "lp", (JoinConditionSpec((("id", "id"),)),)
        )
        assert len(edge.conditions_from("lp")) == 1

    def test_no_conditions_rejected(self):
        with pytest.raises(SchemaError):
            SchemaEdge("a", "b", ())


class TestSchemaGraph:
    def test_from_database_uses_fks(self, mini_db):
        graph = SchemaGraph.from_database(mini_db)
        assert set(graph.tables) == {"game", "player", "player_game"}
        assert len(graph.edges) == 2

    def test_edges_of(self, mini_db):
        graph = SchemaGraph.from_database(mini_db)
        assert len(graph.edges_of("player_game")) == 2
        assert len(graph.edges_of("game")) == 1

    def test_add_edge_merges_conditions(self):
        graph = SchemaGraph()
        graph.add_edge("a", "b", [[("x", "y")]])
        edge = graph.add_edge("a", "b", [[("p", "q")]])
        assert len(graph.edges) == 1
        assert len(edge.conditions) == 2

    def test_merge_flips_when_reversed(self):
        graph = SchemaGraph()
        graph.add_edge("a", "b", [[("x", "y")]])
        edge = graph.add_edge("b", "a", [[("y2", "x2")]])
        # Second condition stored oriented a→b.
        assert edge.conditions[1].pairs == (("x2", "y2"),)

    def test_self_edge(self):
        graph = SchemaGraph()
        graph.add_edge("lp", "lp", [[("lid", "lid")]])
        assert graph.edges[0].is_self_edge

    def test_num_conditions(self, mini_db):
        graph = SchemaGraph.from_database(mini_db)
        assert graph.num_conditions() == 2

    def test_include_self_edges_for_mapping_tables(self, mini_db):
        graph = SchemaGraph.from_database(mini_db, include_self_edges=True)
        self_edges = [e for e in graph.edges if e.is_self_edge]
        # player_game has a composite PK → gets a self edge.
        assert any(e.table_a == "player_game" for e in self_edges)
