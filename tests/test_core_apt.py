"""Unit tests for APT materialization (Definition 4)."""

import numpy as np
import pytest

from repro.core import JoinConditionSpec, JoinGraph, materialize_apt
from repro.db import ProvenanceTable, PT_ROW_ID, parse_sql
from tests.conftest import GSW_WINS_SQL

GAME_COND = JoinConditionSpec((("year", "year"), ("gameno", "gameno")))
PLAYER_COND = JoinConditionSpec((("player_id", "player_id"),))


@pytest.fixture()
def pt(mini_db) -> ProvenanceTable:
    return ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)


def star_join_graph() -> JoinGraph:
    graph = JoinGraph.initial({"g": "game"})
    graph = graph.with_new_node(0, "player_game", GAME_COND, "g")
    return graph.with_new_node(1, "player", PLAYER_COND, None)


class TestMaterialization:
    def test_zero_edge_apt_is_pt(self, pt, mini_db):
        apt = materialize_apt(JoinGraph.initial({"g": "game"}), pt, mini_db)
        assert apt.num_rows == pt.relation.num_rows

    def test_join_fanout(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        # 9 GSW wins × 3 players each = 27 rows.
        assert apt.num_rows == 27

    def test_lineage_column_preserved(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        pt_ids = set(apt.pt_row_ids.tolist())
        assert pt_ids == set(pt.relation.column(PT_ROW_ID).tolist())

    def test_restrict_row_ids(self, pt, mini_db):
        key = pt.group_key_for({"season": "2015-16"})
        ids = pt.row_ids_of(key)
        apt = materialize_apt(
            star_join_graph(), pt, mini_db, restrict_row_ids=ids
        )
        assert apt.num_rows == len(ids) * 3
        assert set(apt.pt_row_ids.tolist()) == set(ids.tolist())

    def test_context_columns_prefixed(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        names = apt.relation.column_names
        assert "player_game.pts" in names
        assert "player.player_name" in names

    def test_cycle_edge_becomes_filter(self, pt, mini_db):
        # PT—player_game plus a second (parallel) PT—player_game edge on
        # year only: conjunction applied, same result as single edge here.
        graph = JoinGraph.initial({"g": "game"})
        graph = graph.with_new_node(0, "player_game", GAME_COND, "g")
        year_only = JoinConditionSpec((("year", "year"),))
        extended = graph.with_new_edge(0, 1, year_only, "g")
        assert extended is not None
        apt = materialize_apt(extended, pt, mini_db)
        base = materialize_apt(graph, pt, mini_db)
        assert apt.num_rows == base.num_rows


class TestAttributeMetadata:
    def test_group_by_columns_excluded(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        minable = {a.name for a in apt.attributes}
        assert "g.winner" not in minable
        assert "g.season" not in minable
        assert "g.winner" in apt.excluded_attributes

    def test_key_columns_excluded(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        minable = {a.name for a in apt.attributes}
        assert "player.player_id" not in minable
        assert "player_game.player_id" not in minable

    def test_value_columns_minable(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        minable = {a.name for a in apt.attributes}
        assert "player_game.pts" in minable
        assert "player.player_name" in minable
        assert "g.home" in minable

    def test_numeric_vs_categorical_split(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        assert "player_game.pts" in apt.numeric_attribute_names()
        assert "player.player_name" in apt.categorical_attribute_names()

    def test_attribute_lookup(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        attr = apt.attribute("player_game.pts")
        assert attr.is_numeric
        assert not attr.from_provenance
        with pytest.raises(KeyError):
            apt.attribute("zzz")

    def test_display_name_prefixes_provenance(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        attr = apt.attribute("g.home")
        assert attr.from_provenance
        assert attr.display_name == "prov.g.home"

    def test_minable_columns_aligned(self, pt, mini_db):
        apt = materialize_apt(star_join_graph(), pt, mini_db)
        cols = apt.minable_columns()
        lengths = {len(v) for v in cols.values()}
        assert lengths == {apt.num_rows}
