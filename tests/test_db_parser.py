"""Unit tests for the single-block SQL parser."""

import pytest

from repro.db import ParseError, parse_sql
from repro.db.expressions import And, Arithmetic, Comparison, Literal
from repro.db.query import AggregateCall, contains_aggregate


class TestBasicParsing:
    def test_count_star_group_by(self):
        q = parse_sql(
            "SELECT winner AS team, season, COUNT(*) AS win FROM game g "
            "WHERE winner = 'GSW' GROUP BY winner, season"
        )
        assert [i.alias for i in q.select] == ["team", "season", "win"]
        assert q.tables[0].table == "game"
        assert q.tables[0].alias == "g"
        assert [r.name for r in q.group_by] == ["winner", "season"]

    def test_avg_with_join(self):
        q = parse_sql(
            "SELECT AVG(points) AS avg_pts, s.season_name "
            "FROM player p, player_game_stats pgs, game g, season s "
            "WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date "
            "AND s.season_id = g.season_id AND p.player_name = 'LeBron James' "
            "GROUP BY s.season_name"
        )
        assert len(q.tables) == 4
        assert q.aggregate_output_names == ["avg_pts"]
        assert q.group_by_output_names == ["season_name"]

    def test_arithmetic_over_aggregates(self):
        q = parse_sql(
            "SELECT insurance, 1.0 * SUM(flag) / COUNT(*) AS rate "
            "FROM admissions GROUP BY insurance"
        )
        rate = q.select[1].expression
        assert isinstance(rate, Arithmetic)
        assert contains_aggregate(rate)

    def test_implicit_alias(self):
        q = parse_sql("SELECT COUNT(*) FROM t GROUP BY x")
        # default alias for COUNT(*) is "count"; x must appear… it doesn't,
        # so use a group-by column query instead
        assert q.select[0].alias == "count"

    def test_alias_without_as(self):
        q = parse_sql("SELECT COUNT(*) win, season FROM game GROUP BY season")
        assert q.select[0].alias == "win"

    def test_string_literal_with_quote(self):
        q = parse_sql(
            "SELECT COUNT(*) FROM t WHERE name = 'O''Neal' GROUP BY name"
        )
        comparison = q.where
        assert isinstance(comparison, Comparison)
        assert isinstance(comparison.right, Literal)
        assert comparison.right.value == "O'Neal"

    def test_numeric_literals(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE a >= 1.5 AND b = 3")
        assert isinstance(q.where, And)

    def test_trailing_semicolon(self):
        parse_sql("SELECT COUNT(*) FROM t;")

    def test_parenthesized_predicate(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, And)

    def test_not_predicate(self):
        parse_sql("SELECT COUNT(*) FROM t WHERE NOT a = 1")

    def test_text_roundtrip(self):
        sql = "SELECT COUNT(*) AS c FROM t GROUP BY x"
        # x not selected: fine — only selected non-aggregates must be grouped
        assert str(parse_sql(sql)) == sql


class TestValidation:
    def test_ungrouped_select_column_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a, COUNT(*) FROM t GROUP BY b")

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT COUNT(*) FROM t x, u x")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("")


class TestUnsupportedFeatures:
    @pytest.mark.parametrize(
        "sql,fragment",
        [
            ("SELECT COUNT(*) FROM t ORDER BY a", "ORDER BY"),
            ("SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1", "HAVING"),
            ("SELECT COUNT(*) FROM t LIMIT 5", "LIMIT"),
            ("SELECT DISTINCT a FROM t", "DISTINCT"),
            ("SELECT COUNT(*) FROM t JOIN u ON t.a = u.a", "JOIN"),
            ("SELECT COUNT(*) FROM t WHERE a IN (1, 2)", "IN"),
            ("SELECT COUNT(*) FROM t WHERE a LIKE 'x%'", "LIKE"),
            ("SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 2", "BETWEEN"),
            ("SELECT (SELECT COUNT(*) FROM u) FROM t", "subquer"),
        ],
    )
    def test_rejected_with_clear_message(self, sql, fragment):
        with pytest.raises(ParseError) as exc:
            parse_sql(sql)
        assert fragment.lower().split()[0] in str(exc.value).lower()

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ParseError):
            AggregateCall(func="median")

    def test_sum_requires_argument(self):
        with pytest.raises(ParseError):
            AggregateCall(func="sum")
