"""Unit tests for why-provenance computation."""

import numpy as np
import pytest

from repro.db import ExecutionError, ProvenanceTable, PT_ROW_ID, parse_sql
from tests.conftest import GSW_WINS_SQL


@pytest.fixture()
def pt(mini_db) -> ProvenanceTable:
    return ProvenanceTable.compute(parse_sql(GSW_WINS_SQL), mini_db)


class TestProvenanceTable:
    def test_pt_is_filtered_working_table(self, pt, mini_db):
        # 9 GSW wins total in the mini db.
        assert pt.relation.num_rows == 9

    def test_row_ids_unique(self, pt):
        ids = pt.relation.column(PT_ROW_ID)
        assert len(set(ids.tolist())) == len(ids)

    def test_groups_partition_pt(self, pt):
        total = sum(len(v) for v in pt.groups.values())
        assert total == pt.relation.num_rows
        all_ids = sorted(
            i for v in pt.groups.values() for i in v.tolist()
        )
        assert all_ids == list(range(pt.relation.num_rows))

    def test_result_matches_direct_execution(self, pt, mini_db):
        direct = mini_db.sql(GSW_WINS_SQL)
        assert sorted(map(tuple, pt.result.iter_rows())) == sorted(
            map(tuple, direct.iter_rows())
        )

    def test_group_key_lookup_by_alias(self, pt):
        key = pt.group_key_for({"season": "2015-16"})
        assert len(pt.row_ids_of(key)) == 6

    def test_group_key_lookup_multi(self, pt):
        key = pt.group_key_for({"team": "GSW", "season": "2012-13"})
        assert len(pt.row_ids_of(key)) == 3

    def test_ambiguous_lookup_raises(self, pt):
        with pytest.raises(ExecutionError):
            pt.group_key_for({"team": "GSW"})  # matches both seasons

    def test_unknown_output_name_raises(self, pt):
        with pytest.raises(ExecutionError):
            pt.group_key_for({"nonsense": 1})

    def test_no_match_raises(self, pt):
        with pytest.raises(ExecutionError):
            pt.group_key_for({"season": "1999-00"})

    def test_provenance_of_group(self, pt):
        key = pt.group_key_for({"season": "2012-13"})
        sub = pt.provenance_of(key)
        assert sub.num_rows == 3
        winners = set(sub.column("g.winner"))
        assert winners == {"GSW"}

    def test_unknown_group_raises(self, pt):
        with pytest.raises(ExecutionError):
            pt.provenance_of(("nope",))
        with pytest.raises(ExecutionError):
            pt.row_ids_of(("nope",))

    def test_row_ids_excluding(self, pt):
        key = pt.group_key_for({"season": "2015-16"})
        rest = pt.row_ids_excluding(key)
        own = pt.row_ids_of(key)
        assert len(rest) + len(own) == pt.relation.num_rows
        assert set(rest.tolist()).isdisjoint(own.tolist())

    def test_data_columns_exclude_row_id(self, pt):
        assert PT_ROW_ID not in pt.data_columns
        assert all(c.startswith("g.") for c in pt.data_columns)

    def test_no_group_by_single_group(self, mini_db):
        q = parse_sql("SELECT COUNT(*) AS n FROM game")
        pt = ProvenanceTable.compute(q, mini_db)
        assert list(pt.groups) == [()]
        assert len(pt.groups[()]) == 16
