"""Golden-pin end-to-end identity for the join-strategy knob.

The sorted-window strategy is claimed byte-identical to the hash core
*through the whole pipeline*, not just per join step.  These tests pin
that claim where users see it:

- full CaJaDE ranked output across ``join_strategy`` ×
  ``late_materialization`` × ``workers`` (one payload set, size 1);
- the Qnba user-study workload, hash vs sorted-window;
- the serving layer: two services differing only in the knob produce
  the same response bytes and the same ``X-Cajade-Fingerprint``;
- cache-key neutrality: ``mining_config_key`` and
  ``request_cache_key`` ignore the knob, so a hash session and a
  sorted-window session share memo/coalescing/response-cache entries;
- the CLI flag round-trips;
- the window counters surface in the request timer exactly when the
  strategy is active.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import CajadeConfig, CajadeSession, ComparisonQuestion, ExplanationRequest
from repro.api.session import mining_config_key
from repro.core.timing import (
    JOIN_PERMUTATION_REUSES,
    JOIN_SEARCHSORTED_PROBES,
    JOIN_WINDOWS_BUILT,
)
from repro.serving import (
    ExplanationService,
    InlineBackend,
    canonical_payload,
    request_cache_key,
)
from tests.conftest import GSW_WINS_SQL

QUESTION = ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"})

BASE = CajadeConfig(
    max_join_edges=2,
    num_selected_attrs=3,
    f1_sample_rate=1.0,
    seed=4,
)


def _ranked_payload(response) -> str:
    payload = json.loads(response.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def _payload(db, schema_graph, **overrides) -> str:
    session = CajadeSession(db, schema_graph, BASE.with_overrides(**overrides))
    return _ranked_payload(session.explain(GSW_WINS_SQL, QUESTION))


# ----------------------------------------------------------------------
# Full-pipeline ranked-output identity
# ----------------------------------------------------------------------
class TestPipelineIdentity:
    def test_strategy_late_mat_workers_grid(self, mini_db, mini_schema_graph):
        payloads = [
            _payload(mini_db, mini_schema_graph, **overrides)
            for overrides in (
                {"join_strategy": "hash"},
                {"join_strategy": "sorted-window"},
                {"join_strategy": "hash", "late_materialization": False},
                {"join_strategy": "sorted-window",
                 "late_materialization": False},
                {"join_strategy": "hash", "workers": 4},
                {"join_strategy": "sorted-window", "workers": 4},
            )
        ]
        assert len(set(payloads)) == 1

    def test_qnba_identity(self, nba_small):
        """The Qnba user-study workload (Fig. 8's join-graph shapes)
        ranks identically under both strategies."""
        from repro.datasets import user_study_query

        db, schema_graph = nba_small
        workload = user_study_query()
        base = CajadeConfig(
            max_join_edges=1,
            num_selected_attrs=3,
            f1_sample_rate=0.3,
            seed=2,
        )
        payloads = []
        for strategy in ("hash", "sorted-window"):
            session = CajadeSession(
                db,
                schema_graph,
                base.with_overrides(join_strategy=strategy),
            )
            response = session.explain(workload.sql, workload.question)
            payloads.append(_ranked_payload(response))
        assert payloads[0] == payloads[1]

    def test_window_counters_surface_when_active(
        self, mini_db, mini_schema_graph
    ):
        session = CajadeSession(
            mini_db,
            mini_schema_graph,
            BASE.with_overrides(join_strategy="sorted-window"),
        )
        response = session.explain(GSW_WINS_SQL, QUESTION)
        counters = response.timer.counters()
        assert counters.get(JOIN_WINDOWS_BUILT, 0) > 0
        assert counters.get(JOIN_SEARCHSORTED_PROBES, 0) > 0
        assert JOIN_PERMUTATION_REUSES in counters

        hash_session = CajadeSession(
            mini_db,
            mini_schema_graph,
            BASE.with_overrides(join_strategy="hash"),
        )
        hash_response = hash_session.explain(GSW_WINS_SQL, QUESTION)
        assert JOIN_WINDOWS_BUILT not in hash_response.timer.counters()


# ----------------------------------------------------------------------
# Serving-layer identity and cache-key neutrality
# ----------------------------------------------------------------------
class TestServingIdentity:
    def test_same_payload_and_fingerprint(self, mini_db, mini_schema_graph):
        async def serve(strategy: str):
            backend = InlineBackend(
                mini_db,
                mini_schema_graph,
                BASE.with_overrides(join_strategy=strategy),
            )
            async with ExplanationService(backend) as service:
                return await service.submit(
                    ExplanationRequest(GSW_WINS_SQL, QUESTION)
                )

        hash_response = asyncio.run(serve("hash"))
        window_response = asyncio.run(serve("sorted-window"))
        assert hash_response.payload == window_response.payload
        assert hash_response.fingerprint == window_response.fingerprint

    def test_cache_keys_are_strategy_neutral(self):
        hash_config = BASE.with_overrides(join_strategy="hash")
        window_config = BASE.with_overrides(join_strategy="sorted-window")
        assert mining_config_key(hash_config) == mining_config_key(
            window_config
        )
        request = ExplanationRequest(GSW_WINS_SQL, QUESTION)
        assert request_cache_key(request, hash_config) == request_cache_key(
            request, window_config
        )

    def test_non_neutral_field_still_splits_keys(self):
        """Sanity guard: neutrality is per-field, not a broken key."""
        assert mining_config_key(BASE) != mining_config_key(
            BASE.with_overrides(seed=BASE.seed + 1)
        )


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------
class TestCli:
    def test_join_strategy_flag_round_trip(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["workload", "Qnba1", "--join-strategy", "hash"]
        )
        assert args.join_strategy == "hash"
        args = build_parser().parse_args(["workload", "Qnba1"])
        assert args.join_strategy == "sorted-window"

    def test_unknown_strategy_rejected(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["workload", "Qnba1", "--join-strategy", "merge"]
            )
        assert "invalid choice" in capsys.readouterr().err
