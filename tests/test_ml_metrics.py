"""Unit tests for ranking metrics (NDCG, Kendall tau, top-k match)."""

import pytest

from repro.ml import (
    dcg,
    kendall_tau_distance,
    kendall_tau_distance_scores,
    ndcg,
    recall_at_k,
    top_k_match,
)


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        rel = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["a", "b", "c"], rel) == pytest.approx(1.0)

    def test_reversed_is_less(self):
        rel = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["c", "b", "a"], rel) < 1.0

    def test_missing_items_zero_gain(self):
        rel = {"a": 1.0}
        assert ndcg(["x", "y"], rel) == 0.0

    def test_k_truncation(self):
        rel = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["a", "c", "b"], rel, k=1) == pytest.approx(1.0)

    def test_empty_relevance(self):
        assert ndcg(["a"], {}) == 0.0

    def test_dcg_positional_discount(self):
        assert dcg([1.0, 1.0]) == pytest.approx(1.0 + 1.0 / 1.5849625007)


class TestKendallTau:
    def test_identity_zero(self):
        assert kendall_tau_distance(["a", "b", "c"], ["a", "b", "c"]) == 0

    def test_full_reversal(self):
        assert kendall_tau_distance(["a", "b", "c"], ["c", "b", "a"]) == 3

    def test_symmetric(self):
        a, b = ["a", "b", "c", "d"], ["b", "d", "a", "c"]
        assert kendall_tau_distance(a, b) == kendall_tau_distance(b, a)

    def test_not_permutation_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(["a"], ["b"])

    def test_scores_variant_counts_strict_disagreements(self):
        a = {"x": 3.0, "y": 2.0, "z": 1.0}
        b = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert kendall_tau_distance_scores(a, b) == 3

    def test_scores_ties_never_disagree(self):
        a = {"x": 1.0, "y": 1.0}
        b = {"x": 5.0, "y": 1.0}
        assert kendall_tau_distance_scores(a, b) == 0

    def test_scores_agreement(self):
        a = {"x": 3.0, "y": 2.0}
        b = {"x": 30.0, "y": 20.0}
        assert kendall_tau_distance_scores(a, b) == 0


class TestTopK:
    def test_full_overlap(self):
        assert top_k_match(["a", "b"], ["b", "a"], 2) == 2

    def test_partial(self):
        assert top_k_match(["a", "b", "c"], ["a", "x", "y"], 3) == 1

    def test_recall_normalized(self):
        assert recall_at_k(["a", "b"], ["a", "x"], 2) == pytest.approx(0.5)

    def test_recall_empty_truth(self):
        assert recall_at_k([], ["a"], 3) == 0.0
