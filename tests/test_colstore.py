"""Out-of-core column store: memmap-backed relations ≡ in-memory.

Differential suite for :mod:`repro.db.colstore`: a database saved with
``Database.save`` and reopened with ``Database.open`` must be
indistinguishable from the in-memory original through every consumer —
column materialization, subset gathers, sort indexes, frame joins under
both registered join strategies, the mining kernel's code matrices, and
the shared-memory export round-trip — over adversarial inputs (NULL
text, ``-1`` sentinel ints, float NaN, zero-row tables, all-NULL
columns).  The lazy-dictionary contract is asserted directly:
``open`` reads zero value-dict pickles, and only tables whose object
values are actually gathered ever load one.

Also holds the vectorized-encoding and vectorized-aggregate parity
properties (this PR's load-path and executor satellites):
``encoding_from_distinct`` must reproduce ``encode_object_column``
exactly, and ``aggregate(..., vectorized=True)`` must match the
retained per-group reference path byte for byte.

CI runs this file under the deterministic raised-example profile
(``HYPOTHESIS_PROFILE=ci``), like the join-strategy oracle.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import ColumnType, Relation, TableSchema
from repro.db.colstore import LazyObjectColumn, open_columnar, save_columnar
from repro.db.database import Database
from repro.db.frame import IndexFrame
from repro.db.join_strategy import make_join_strategy
from repro.db.relation import encode_object_column, encoding_from_distinct
from tests.test_engine import assert_relations_identical

settings.register_profile(
    "ci", settings(max_examples=200, deadline=None, derandomize=True)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# NULL text, duplicate-heavy tiny domains, NaN floats, -1 sentinel ints:
# every encoder edge the eager load path handles.
TEXT_CELLS = st.one_of(st.none(), st.sampled_from(["a", "b", "c", ""]))
INT_CELLS = st.one_of(st.none(), st.integers(min_value=-1, max_value=4))
FLOAT_CELLS = st.one_of(
    st.none(), st.just(math.nan), st.sampled_from([-2.0, 0.0, 1.5])
)
ROWS = st.lists(st.tuples(INT_CELLS, FLOAT_CELLS, TEXT_CELLS), max_size=24)


def _table(name: str, rows) -> Relation:
    return Relation.from_rows(
        TableSchema.build(
            name,
            {
                f"{name}.k": ColumnType.INT,
                f"{name}.x": ColumnType.FLOAT,
                f"{name}.s": ColumnType.TEXT,
            },
        ),
        rows,
    )


def _database(tables: list[Relation]) -> Database:
    db = Database(name="colstore_test")
    for relation in tables:
        db.add_relation(relation)
    return db


def _reopened(db: Database, tmp_path) -> Database:
    directory = tmp_path / "store"
    save_columnar(db, directory)
    return open_columnar(directory)


# ----------------------------------------------------------------------
# O(dict) open
# ----------------------------------------------------------------------
class TestLazyDictionaries:
    def test_open_loads_zero_dicts(self, tmp_path):
        db = _database([_table("t", [(1, 1.0, "a"), (2, math.nan, None)])])
        reopened = _reopened(db, tmp_path)
        assert reopened.column_store.dicts_loaded == 0

    def test_gather_loads_only_touched_tables(self, tmp_path):
        db = _database(
            [
                _table("t", [(1, 1.0, "a")]),
                _table("u", [(2, 2.0, "b")]),
            ]
        )
        reopened = _reopened(db, tmp_path)
        # Numeric columns and sort indexes never need the dictionaries.
        reopened.table("t").column("t.k")
        reopened.table("t").sort_index("t.k")
        reopened.table("u").sort_index("u.s")
        assert reopened.column_store.dicts_loaded == 0
        # An object-value gather loads exactly its own table's pickle.
        reopened.table("t").column("t.s")
        assert reopened.column_store.loaded_tables() == ["t"]

    def test_lazy_column_slot_is_identity_stable(self, tmp_path):
        db = _database([_table("t", [(1, 1.0, "a"), (2, 2.0, "b")])])
        relation = _reopened(db, tmp_path).table("t")
        slot = relation._columns["t.s"]
        assert isinstance(slot, LazyObjectColumn)
        first = relation.column("t.s")
        assert relation.column("t.s") is first
        assert relation._columns["t.s"] is slot


# ----------------------------------------------------------------------
# Memmap ≡ in-memory parity
# ----------------------------------------------------------------------
class TestRoundTripParity:
    @given(rows=ROWS)
    def test_columns_and_schema(self, rows, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("colstore")
        db = _database([_table("t", rows)])
        relation = _reopened(db, tmp).table("t")
        original = db.table("t")
        assert relation.schema.columns == original.schema.columns
        assert_relations_identical(original, relation)
        for name in original.column_names:
            assert relation.column_dtype(name) == original.column_dtype(name)

    @given(rows=ROWS, data=st.data())
    def test_subset_gathers(self, rows, data, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("colstore")
        db = _database([_table("t", rows)])
        relation = _reopened(db, tmp).table("t")
        original = db.table("t")
        n = original.num_rows
        subset = np.asarray(
            data.draw(
                st.lists(st.integers(min_value=0, max_value=max(0, n - 1)))
            )
            if n
            else [],
            dtype=np.int64,
        )
        for name in original.column_names:
            left = original.gather_column(name, subset)
            right = relation.gather_column(name, subset)
            assert left.dtype == right.dtype
            if left.dtype.kind == "f":
                assert np.array_equal(left, right, equal_nan=True)
            else:
                assert list(left) == list(right)

    @given(rows=ROWS)
    def test_sort_indexes(self, rows, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("colstore")
        db = _database([_table("t", rows)])
        relation = _reopened(db, tmp).table("t")
        original = db.table("t")
        for name in original.column_names:
            left = original.sort_index(name)
            right = relation.sort_index(name)
            if left is None:
                assert right is None
                continue
            assert right is not None
            assert np.array_equal(left.perm, right.perm)
        # Sort indexes on codes never load a value dictionary.
        assert relation._columns  # opened relation still lazy where object
        assert db is not None

    @given(left_rows=ROWS, right_rows=ROWS)
    def test_joins_both_strategies(
        self, left_rows, right_rows, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("colstore")
        db = _database([_table("l", left_rows), _table("r", right_rows)])
        reopened = _reopened(db, tmp)
        conditions = [("l.k", "r.k"), ("l.s", "r.s")]
        for strategy_name in (None, "sorted-window"):
            strategy = (
                make_join_strategy(strategy_name) if strategy_name else None
            )
            eager = (
                IndexFrame.from_relation(db.table("l"))
                .join(db.table("r"), conditions, strategy=strategy)
                .to_relation()
            )
            lazy = (
                IndexFrame.from_relation(reopened.table("l"))
                .join(reopened.table("r"), conditions, strategy=strategy)
                .to_relation()
            )
            assert_relations_identical(eager, lazy)

    @given(rows=ROWS)
    def test_kernel_code_matrices(self, rows, tmp_path_factory):
        from repro.core.kernel import MiningKernel

        tmp = tmp_path_factory.mktemp("colstore")
        db = _database([_table("t", rows)])
        reopened = _reopened(db, tmp)

        def build(relation):
            n = relation.num_rows
            encoding = relation.encoding("t.s")
            encodings = (
                {"t.s": (encoding, None)} if encoding is not None else None
            )
            return MiningKernel(
                columns={"t.s": relation.column("t.s")}
                if encodings is None
                else {"t.s": None},
                row_slot=np.zeros(n, dtype=np.int64),
                m1=1,
                m2=0,
                encodings=encodings,
            )

        left = build(db.table("t"))
        right = build(reopened.table("t"))
        for kind in ("match", "counting"):
            a = left.code_matrix(["t.s"], kind=kind)
            b = right.code_matrix(["t.s"], kind=kind)
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a, b)

    @given(rows=ROWS)
    def test_shm_export_round_trip(self, rows, tmp_path_factory):
        from repro.serving.shm import AttachedDatabase, DatabaseExport

        tmp = tmp_path_factory.mktemp("colstore")
        db = _database([_table("t", rows)])
        reopened = _reopened(db, tmp)
        export = DatabaseExport(reopened)
        try:
            attached = AttachedDatabase(export.handle)
            try:
                assert_relations_identical(
                    db.table("t"), attached.database.table("t")
                )
            finally:
                attached.close()
        finally:
            export.close()

    def test_zero_row_table(self, tmp_path):
        db = _database([_table("t", [])])
        relation = _reopened(db, tmp_path).table("t")
        assert relation.num_rows == 0
        assert_relations_identical(db.table("t"), relation)

    def test_all_null_text_column(self, tmp_path):
        db = _database([_table("t", [(1, 1.0, None), (2, 2.0, None)])])
        relation = _reopened(db, tmp_path).table("t")
        assert_relations_identical(db.table("t"), relation)
        encoding = relation.encoding("t.s")
        assert encoding is not None
        assert list(encoding.match_codes) == [-1, -1]

    def test_foreign_keys_survive(self, tmp_path):
        db = _database(
            [_table("l", [(1, 1.0, "a")]), _table("r", [(1, 2.0, "b")])]
        )
        db.add_foreign_key("l", ["l.k"], "r", ["r.k"])
        reopened = _reopened(db, tmp_path)
        fks = reopened.foreign_keys
        assert len(fks) == 1
        assert (fks[0].table, fks[0].ref_table) == ("l", "r")


# ----------------------------------------------------------------------
# Vectorized load-path encoding (satellite: np.unique fold-in)
# ----------------------------------------------------------------------
class TestEncodingFromDistinct:
    @given(
        cells=st.lists(
            st.one_of(st.none(), st.sampled_from(["a", "b", "c", "", "-1"])),
        )
    )
    def test_matches_reference_encoder(self, cells):
        arr = np.empty(len(cells), dtype=object)
        arr[:] = cells
        reference = encode_object_column(arr)
        raw = np.array([("" if c is None else f"v{c}") for c in cells])
        table, first_idx, inverse = np.unique(
            raw.reshape(-1, 1) if len(raw) else raw.reshape(0, 1),
            return_index=True,
            return_inverse=True,
            axis=0,
        )
        coerced = {
            i: cells[int(first_idx[i])] for i in range(len(table))
        }
        vectorized = encoding_from_distinct(
            np.array([coerced[i] for i in range(len(table))], dtype=object)
            if len(table)
            else np.empty(0, dtype=object),
            first_idx,
            inverse,
        )
        assert vectorized is not None and reference is not None
        assert np.array_equal(vectorized.codes, reference.codes)
        assert dict(vectorized.code_of) == dict(reference.code_of)
        assert set(vectorized.null_codes) == set(reference.null_codes)


# ----------------------------------------------------------------------
# Vectorized aggregate (satellite: bincount group reductions)
# ----------------------------------------------------------------------
class TestVectorizedAggregate:
    def _run(self, sql: str, db: Database):
        from repro.db.executor import aggregate, working_table
        from repro.db.parser import parse_sql

        query = parse_sql(sql)
        work = working_table(query, db)
        return (
            aggregate(query, work),
            aggregate(query, work, vectorized=False),
        )

    def _db(self, rows) -> Database:
        return _database([_table("t", rows)])

    GOLDEN_ROWS = [
        (1, 10.0, "a"),
        (1, math.nan, "a"),
        (2, 3.5, "b"),
        (2, -1.0, "b"),
        (None, 7.0, None),
        (3, math.nan, "c"),
    ]

    def test_golden_all_aggregates(self):
        db = self._db(self.GOLDEN_ROWS)
        vec, ref = self._run(
            "SELECT s, COUNT(*) AS n, COUNT(x) AS nx, SUM(x) AS sx, "
            "AVG(x) AS ax, MIN(x) AS mn, MAX(x) AS mx "
            "FROM t GROUP BY s",
            db,
        )
        assert_relations_identical(vec, ref)
        by_s = {
            row[0]: row[1:]
            for row in zip(*(ref.column(c) for c in ref.column_names))
        }
        assert by_s["a"] == (2, 1, 10.0, 10.0, 10.0, 10.0)
        assert by_s["b"] == (2, 2, 2.5, 1.25, -1.0, 3.5)
        # All-NaN group: COUNT(x) is 0 and every value aggregate is None
        # (stored as NaN once the FLOAT result column materializes).
        assert by_s["c"][:2] == (1, 0)
        assert all(math.isnan(v) for v in by_s["c"][2:])

    def test_golden_arithmetic_and_literal(self):
        db = self._db(self.GOLDEN_ROWS)
        vec, ref = self._run(
            "SELECT s, SUM(x) / COUNT(x) AS manual_avg, 7 AS lucky "
            "FROM t GROUP BY s",
            db,
        )
        assert_relations_identical(vec, ref)

    def test_ungrouped_aggregate(self):
        db = self._db(self.GOLDEN_ROWS)
        vec, ref = self._run("SELECT COUNT(*) AS n, AVG(x) AS ax FROM t", db)
        assert_relations_identical(vec, ref)

    def test_object_min_max_falls_back(self):
        db = self._db(self.GOLDEN_ROWS)
        vec, ref = self._run(
            "SELECT k, MIN(s) AS mn, MAX(s) AS mx, COUNT(s) AS n "
            "FROM t GROUP BY k",
            db,
        )
        assert_relations_identical(vec, ref)

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.one_of(
                    st.none(),
                    st.just(math.nan),
                    st.floats(
                        min_value=-1e6,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                ),
                st.one_of(st.none(), st.sampled_from(["a", "b"])),
            ),
            max_size=40,
        )
    )
    def test_property_parity(self, rows):
        db = self._db(rows)
        vec, ref = self._run(
            "SELECT k, COUNT(*) AS n, SUM(x) AS sx, AVG(x) AS ax, "
            "MIN(x) AS mn, MAX(x) AS mx FROM t GROUP BY k",
            db,
        )
        assert_relations_identical(vec, ref)
