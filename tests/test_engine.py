"""Tests for the explanation engine: trie cache, engine, parallel mining."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import CajadeConfig, CajadeExplainer, ComparisonQuestion
from repro.core.apt import JoinStep, build_plan, materialize_apt
from repro.core.enumeration import enumerate_join_graphs
from repro.db import ColumnType, Relation, TableSchema
from repro.db.executor import JoinCache, hash_join
from repro.db.parser import parse_sql
from repro.db.provenance import ProvenanceTable
from repro.engine import MaterializationEngine, PrefixCache, run_streaming
from tests.conftest import GSW_WINS_SQL

QUESTION = ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"})


def _relation(name: str, n: int, cols: int = 2) -> Relation:
    schema = TableSchema.build(
        name, {f"{name}.c{i}": ColumnType.INT for i in range(cols)}
    )
    return Relation.from_rows(
        schema, [tuple(range(cols)) for _ in range(n)]
    )


def _pipeline(mini_db, config=None):
    config = config or CajadeConfig(
        max_join_edges=2, f1_sample_rate=1.0, num_selected_attrs=4, seed=1
    )
    query = parse_sql(GSW_WINS_SQL)
    pt = ProvenanceTable.compute(query, mini_db)
    resolved = QUESTION.resolve(pt)
    restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])
    from repro.core.schema_graph import SchemaGraph

    sg = SchemaGraph.from_database(mini_db)
    graphs = list(enumerate_join_graphs(sg, query, pt, mini_db, config))
    return pt, restrict, graphs


def assert_relations_identical(a: Relation, b: Relation) -> None:
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        left, right = a.column(name), b.column(name)
        assert left.dtype == right.dtype
        if left.dtype.kind == "f":
            assert np.array_equal(left, right, equal_nan=True)
        else:
            assert np.array_equal(left, right)


# ----------------------------------------------------------------------
# PrefixCache
# ----------------------------------------------------------------------
class TestPrefixCache:
    def test_roundtrip_and_stats(self):
        cache = PrefixCache(capacity_bytes=1 << 20)
        rel = _relation("t", 10)
        cache.put(("a",), rel)
        assert cache.get(("a",)) is rel
        assert cache.get(("b",)) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.insertions == 1

    def test_lru_eviction_order(self):
        rel = _relation("t", 100)  # 100 rows x 2 int cols = 1600 bytes
        cache = PrefixCache(capacity_bytes=3 * rel.estimated_bytes)
        cache.put(("a",), rel)
        cache.put(("b",), rel)
        cache.put(("c",), rel)
        cache.get(("a",))  # refresh a; b is now coldest
        cache.put(("d",), rel)
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache and ("d",) in cache
        assert cache.stats.evictions == 1

    def test_byte_accounting(self):
        rel = _relation("t", 50)
        cache = PrefixCache(capacity_bytes=10 * rel.estimated_bytes)
        cache.put(("a",), rel)
        cache.put(("b",), rel)
        assert cache.stats.current_bytes == 2 * rel.estimated_bytes
        # Replacing a key must not double-count.
        cache.put(("a",), rel)
        assert cache.stats.current_bytes == 2 * rel.estimated_bytes

    def test_oversized_rejected(self):
        rel = _relation("t", 1000)
        cache = PrefixCache(capacity_bytes=rel.estimated_bytes - 1)
        cache.put(("a",), rel)
        assert len(cache) == 0
        assert cache.stats.rejected == 1

    def test_zero_capacity_disables(self):
        cache = PrefixCache(capacity_bytes=0)
        cache.put(("a",), _relation("t", 1))
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_zero_capacity_rejects_empty_relations(self):
        """Zero-byte relations must not slip past a zero budget."""
        cache = PrefixCache(capacity_bytes=0)
        empty = _relation("t", 0)
        assert empty.estimated_bytes == 0
        cache.put(("a",), empty)
        assert len(cache) == 0
        assert cache.stats.rejected == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PrefixCache(capacity_bytes=-1)


class _SharedStub:
    """A minimal entry speaking the shared-component cache protocol
    (the shape of a sorted-window :class:`WindowEntry`)."""

    def __init__(self, own: int, token: int, shared_nbytes: int):
        self.own_bytes = own
        self.shared_components = ((token, shared_nbytes),)
        self.estimated_bytes = own + shared_nbytes


class TestPrefixCacheSharedAccounting:
    """Shared components (sort permutations) are charged exactly once,
    however many live entries reference them — the regression the
    window-join strategy depends on for honest eviction pressure."""

    def test_shared_bytes_charged_once(self):
        cache = PrefixCache(capacity_bytes=1 << 20)
        cache.put(("a",), _SharedStub(own=100, token=7, shared_nbytes=5000))
        assert cache.stats.current_bytes == 5100
        cache.put(("b",), _SharedStub(own=200, token=7, shared_nbytes=5000))
        # NOT 5100 + 5200: the permutation is already resident.
        assert cache.stats.current_bytes == 5300
        cache.put(("c",), _SharedStub(own=50, token=8, shared_nbytes=3000))
        assert cache.stats.current_bytes == 5300 + 3050

    def test_shared_bytes_released_with_last_reference(self):
        cache = PrefixCache(capacity_bytes=1 << 20)
        cache.put(("a",), _SharedStub(own=100, token=7, shared_nbytes=5000))
        cache.put(("b",), _SharedStub(own=200, token=7, shared_nbytes=5000))
        # Replacing "a" with an unshared entry drops one reference; the
        # permutation stays charged because "b" still holds it.
        cache.put(("a",), _relation("t", 10))
        rel_bytes = _relation("t", 10).estimated_bytes
        assert cache.stats.current_bytes == rel_bytes + 200 + 5000
        # Replacing "b" drops the last reference: bytes fully released.
        cache.put(("b",), _relation("u", 10))
        assert cache.stats.current_bytes == 2 * rel_bytes
        assert cache._shared == {}

    def test_eviction_releases_shared_at_zero_refs(self):
        # Budget fits both entries + one shared permutation, but not a
        # third entry: the LRU eviction must free only the marginal own
        # bytes while a co-referencing entry is still live.
        cache = PrefixCache(capacity_bytes=5000 + 100 + 200 + 50)
        cache.put(("a",), _SharedStub(own=100, token=7, shared_nbytes=5000))
        cache.put(("b",), _SharedStub(own=200, token=7, shared_nbytes=5000))
        cache.put(("c",), _SharedStub(own=150, token=7, shared_nbytes=5000))
        assert ("a",) not in cache  # coldest entry evicted
        assert ("b",) in cache and ("c",) in cache
        assert cache.stats.current_bytes == 5000 + 200 + 150
        assert cache.stats.evictions == 1

    def test_warm_permutation_admits_entries_cold_budget_rejects(self):
        """An entry whose standalone size exceeds the budget is still
        admitted when its shared permutation is already resident — only
        the marginal bytes are charged."""
        cache = PrefixCache(capacity_bytes=6000)
        cache.put(("a",), _SharedStub(own=100, token=7, shared_nbytes=5000))
        big_standalone = _SharedStub(own=500, token=7, shared_nbytes=5000)
        assert big_standalone.estimated_bytes > cache.capacity_bytes - 5100
        cache.put(("b",), big_standalone)
        assert ("b",) in cache
        assert cache.stats.rejected == 0
        # A *cold* permutation of the same shape is over budget.
        cache.put(("c",), _SharedStub(own=2000, token=9, shared_nbytes=5000))
        assert ("c",) not in cache
        assert cache.stats.rejected == 1

    def test_median_is_over_marginal_bytes(self):
        cache = PrefixCache(capacity_bytes=1 << 20)
        cache.put(("a",), _SharedStub(own=10, token=7, shared_nbytes=5000))
        cache.put(("b",), _SharedStub(own=30, token=7, shared_nbytes=5000))
        cache.put(("c",), _SharedStub(own=50, token=7, shared_nbytes=5000))
        assert cache.median_entry_bytes() == 30  # not 5030

    def test_clear_resets_shared_registry(self):
        cache = PrefixCache(capacity_bytes=1 << 20)
        cache.put(("a",), _SharedStub(own=100, token=7, shared_nbytes=5000))
        cache.clear()
        assert cache.stats.current_bytes == 0
        assert cache._shared == {}
        cache.put(("b",), _SharedStub(own=100, token=7, shared_nbytes=5000))
        assert cache.stats.current_bytes == 5100

    def test_plain_entries_unchanged(self):
        """Entries without the protocol keep historical accounting."""
        cache = PrefixCache(capacity_bytes=1 << 20)
        rel = _relation("t", 50)
        cache.put(("a",), rel)
        assert cache.stats.current_bytes == rel.estimated_bytes
        assert cache.median_entry_bytes() == rel.estimated_bytes


# ----------------------------------------------------------------------
# Vectorized hash join + memoization
# ----------------------------------------------------------------------
class TestHashJoinVectorized:
    def _rel(self, name, col, values, ctype=ColumnType.INT):
        schema = TableSchema.build(name, {col: ctype})
        return Relation.from_rows(schema, [(v,) for v in values])

    def test_null_keys_never_match(self):
        left = self._rel("l", "l.k", [1, None, 2], ColumnType.FLOAT)
        right = self._rel("r", "r.k", [None, 1, 1], ColumnType.FLOAT)
        joined = hash_join(left, right, [("l.k", "r.k")])
        assert joined.num_rows == 2
        assert all(v == 1.0 for v in joined.column("l.k"))

    def test_mixed_int_float_dtypes(self):
        left = self._rel("l", "l.k", [1, 2, 3])
        right = self._rel("r", "r.k", [1.0, 3.0, None], ColumnType.FLOAT)
        joined = hash_join(left, right, [("l.k", "r.k")])
        assert sorted(joined.column("l.k").tolist()) == [1, 3]

    def test_object_keys(self):
        left = self._rel("l", "l.k", ["a", "b", None], ColumnType.TEXT)
        right = self._rel("r", "r.k", ["b", "b", None, "c"], ColumnType.TEXT)
        joined = hash_join(left, right, [("l.k", "r.k")])
        assert joined.num_rows == 2
        assert set(joined.column("l.k")) == {"b"}

    def test_multi_column_key(self):
        lschema = TableSchema.build(
            "l", {"l.a": ColumnType.INT, "l.b": ColumnType.TEXT}
        )
        rschema = TableSchema.build(
            "r", {"r.a": ColumnType.INT, "r.b": ColumnType.TEXT}
        )
        left = Relation.from_rows(lschema, [(1, "x"), (1, "y"), (2, "x")])
        right = Relation.from_rows(rschema, [(1, "x"), (2, "x"), (2, "y")])
        joined = hash_join(
            left, right, [("l.a", "r.a"), ("l.b", "r.b")]
        )
        assert sorted(
            zip(joined.column("l.a").tolist(), joined.column("l.b"))
        ) == [(1, "x"), (2, "x")]

    def test_empty_inputs(self):
        left = self._rel("l", "l.k", [])
        right = self._rel("r", "r.k", [1, 2])
        assert hash_join(left, right, [("l.k", "r.k")]).num_rows == 0
        assert hash_join(right, left, [("r.k", "l.k")]).num_rows == 0

    def test_duplicate_matches_preserved(self):
        left = self._rel("l", "l.k", [1, 1])
        right = self._rel("r", "r.k", [1, 1, 1])
        joined = hash_join(left, right, [("l.k", "r.k")])
        assert joined.num_rows == 6

    def test_large_int_float_keys_stay_exact(self):
        """int64 keys beyond 2^53 must not collide with nearby floats."""
        big = 2**53 + 1
        left = self._rel("l", "l.k", [big, 7])
        right = self._rel(
            "r", "r.k", [float(2**53), 7.0], ColumnType.FLOAT
        )
        joined = hash_join(left, right, [("l.k", "r.k")])
        assert joined.column("l.k").tolist() == [7]

    def test_matches_nested_loop_order(self):
        rng = np.random.default_rng(0)
        left_keys = rng.integers(0, 6, size=40).tolist()
        right_keys = rng.integers(0, 6, size=25).tolist()
        left = self._rel("l", "l.k", left_keys)
        right = self._rel("r", "r.k", right_keys)
        joined = hash_join(left, right, [("l.k", "r.k")])
        expected = sorted(
            (a, b)
            for a in left_keys
            for b in right_keys
            if a == b
        )
        actual = sorted(
            (int(r[0]), int(r[1])) for r in joined.iter_rows()
        )
        assert actual == expected


class TestJoinCache:
    def test_memoizes_identical_inputs(self):
        left = _relation("l", 20)
        right = Relation.from_rows(
            TableSchema.build("r", {"r.c0": ColumnType.INT}),
            [(0,), (0,)],
        )
        cache = JoinCache()
        first = hash_join(left, right, [("l.c0", "r.c0")], cache=cache)
        second = hash_join(left, right, [("l.c0", "r.c0")], cache=cache)
        assert second is first
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_conditions_not_conflated(self):
        schema = TableSchema.build(
            "r", {"r.c0": ColumnType.INT, "r.c1": ColumnType.INT}
        )
        right = Relation.from_rows(schema, [(0, 1), (1, 0)])
        left = _relation("l", 5)
        cache = JoinCache()
        a = hash_join(left, right, [("l.c0", "r.c0")], cache=cache)
        b = hash_join(left, right, [("l.c0", "r.c1")], cache=cache)
        assert a is not b

    def test_lru_bound(self):
        cache = JoinCache(max_entries=2)
        left = _relation("l", 3)
        rights = [
            Relation.from_rows(
                TableSchema.build(f"r{i}", {f"r{i}.c0": ColumnType.INT}),
                [(0,)],
            )
            for i in range(3)
        ]
        for i, right in enumerate(rights):
            hash_join(left, right, [("l.c0", f"r{i}.c0")], cache=cache)
        assert len(cache) == 2

    def test_fingerprints_unique_and_stable(self):
        a, b = _relation("a", 1), _relation("b", 1)
        assert a.fingerprint != b.fingerprint
        assert a.fingerprint == a.fingerprint

    def test_byte_budget_enforced(self):
        left = _relation("l", 100)
        cache = JoinCache(max_entries=100, capacity_bytes=1)
        result = hash_join(
            left,
            Relation.from_rows(
                TableSchema.build("r", {"r.c0": ColumnType.INT}), [(0,)]
            ),
            [("l.c0", "r.c0")],
            cache=cache,
        )
        # Result exceeds the byte budget: computed but not retained.
        assert result.num_rows == 100
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_byte_budget_evicts_lru(self):
        small = _relation("l", 10)
        cache = JoinCache(
            max_entries=100, capacity_bytes=3 * small.estimated_bytes
        )
        for i in range(4):
            right = Relation.from_rows(
                TableSchema.build(f"r{i}", {f"r{i}.c0": ColumnType.INT}),
                [(0,)],
            )
            hash_join(small, right, [("l.c0", f"r{i}.c0")], cache=cache)
        assert cache.current_bytes <= 3 * small.estimated_bytes
        assert len(cache) < 4


# ----------------------------------------------------------------------
# Plan canonicalization (the trie ordering invariant)
# ----------------------------------------------------------------------
class TestPlanPrefixInvariant:
    def test_extension_plans_share_parent_prefix(self, mini_db):
        """Graphs extending Ω' by a fresh node start with Ω''s steps."""
        from repro.core.enumeration import extend_join_graph
        from repro.core.schema_graph import SchemaGraph

        pt, _, graphs = _pipeline(mini_db)
        sg = SchemaGraph.from_database(mini_db)
        query = parse_sql(GSW_WINS_SQL)
        checked = 0
        for parent in graphs:
            parent_plan = build_plan(parent, pt)
            for child in extend_join_graph(parent, sg, query):
                if len(child.nodes) == len(parent.nodes):
                    continue  # parallel edge, not a fresh-node extension
                child_plan = build_plan(child, pt)
                assert (
                    child_plan.joins[: len(parent_plan.joins)]
                    == parent_plan.joins
                )
                assert child_plan.filters == parent_plan.filters
                checked += 1
        assert checked > 0, "BFS extensions must share plan prefixes"

    def test_conditions_sorted(self, mini_db):
        pt, _, graphs = _pipeline(mini_db)
        for g in graphs:
            for step in build_plan(g, pt).joins:
                assert list(step.conditions) == sorted(step.conditions)

    def test_plan_steps_hashable(self, mini_db):
        pt, _, graphs = _pipeline(mini_db)
        keys = {build_plan(g, pt).steps for g in graphs}
        assert len(keys) == len(graphs)  # enumeration dedups isomorphs


# ----------------------------------------------------------------------
# MaterializationEngine
# ----------------------------------------------------------------------
class TestMaterializationEngine:
    def test_identical_to_direct(self, mini_db):
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=64.0
        )
        for g in graphs:
            direct = materialize_apt(
                g, pt, mini_db, restrict_row_ids=restrict
            )
            cached = engine.materialize(g)
            assert_relations_identical(direct.relation, cached.relation)
            assert [a.name for a in direct.attributes] == [
                a.name for a in cached.attributes
            ]

    def test_identical_under_tiny_cache(self, mini_db):
        """Evictions must never change results."""
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=0.002
        )
        for g in graphs:
            direct = materialize_apt(
                g, pt, mini_db, restrict_row_ids=restrict
            )
            assert_relations_identical(
                direct.relation, engine.materialize(g).relation
            )

    def test_zero_cache_equivalent(self, mini_db):
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=0.0
        )
        for g in graphs[:5]:
            direct = materialize_apt(
                g, pt, mini_db, restrict_row_ids=restrict
            )
            assert_relations_identical(
                direct.relation, engine.materialize(g).relation
            )
        assert engine.stats.steps_reused == 0

    def test_zero_cache_disables_join_memo_too(self, mini_db):
        """apt_cache_mb=0 must mean genuinely no caching anywhere."""
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=0.0
        )
        sized = [g for g in graphs if g.num_edges > 0][0]
        engine.materialize(sized)
        engine.materialize(sized)
        stats = engine.stats
        assert stats.join_memo_hits == 0
        assert stats.full_hits == 0
        assert stats.cache is not None and stats.cache.insertions == 0

    def test_materialize_many_preserves_order(self, mini_db):
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=64.0
        )
        batch = engine.materialize_many(graphs)
        assert len(batch) == len(graphs)
        for g, apt in zip(graphs, batch):
            assert apt.join_graph is g

    def test_repeat_materialization_hits_cache(self, mini_db):
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=64.0
        )
        sized = [g for g in graphs if g.num_edges > 0]
        engine.materialize(sized[0])
        before = engine.stats.full_hits
        engine.materialize(sized[0])
        assert engine.stats.full_hits == before + 1

    def test_prefix_sharing_fires(self, mini_db):
        from repro.core.enumeration import extend_join_graph
        from repro.core.schema_graph import SchemaGraph

        pt, restrict, graphs = _pipeline(mini_db)
        sg = SchemaGraph.from_database(mini_db)
        query = parse_sql(GSW_WINS_SQL)
        # The valid chain plus all its one-edge extensions: every
        # fresh-node extension shares the chain's whole plan as prefix.
        parent = [g for g in graphs if g.num_edges > 0][0]
        batch = [parent] + extend_join_graph(parent, sg, query)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict, cache_mb=64.0
        )
        engine.materialize_many(batch)
        stats = engine.stats
        assert stats.steps_reused > 0
        assert stats.steps_computed > 0
        assert stats.cache is not None and stats.cache.insertions > 0

        # Direct materialization agrees on every extension too.
        for g in batch:
            direct = materialize_apt(
                g, pt, mini_db, restrict_row_ids=restrict
            )
            assert_relations_identical(
                direct.relation, engine.materialize(g).relation
            )

    def test_negative_cache_rejected(self, mini_db):
        pt, restrict, _ = _pipeline(mini_db)
        with pytest.raises(ValueError):
            MaterializationEngine(pt, mini_db, cache_mb=-1.0)

    def test_stats_describe_renders(self, mini_db):
        pt, restrict, graphs = _pipeline(mini_db)
        engine = MaterializationEngine(
            pt, mini_db, restrict_row_ids=restrict
        )
        engine.materialize_many(graphs[:3])
        text = engine.stats.describe()
        assert "apt cache" in text
        assert "steps reused" in text


# ----------------------------------------------------------------------
# Parallel mining
# ----------------------------------------------------------------------
class TestParallel:
    def test_run_streaming_serial_and_parallel_agree(self):
        items = [(i, i + 1) for i in range(25)]
        fn = lambda k, v: k * v  # noqa: E731
        serial = run_streaming(iter(items), fn, 1)
        pooled = run_streaming(iter(items), fn, 4, max_inflight=3)
        assert serial == pooled == {k: k * v for k, v in items}

    def test_run_streaming_propagates_exceptions(self):
        def boom(key, value):
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            run_streaming([(0, 0), (1, 1), (2, 2)], boom, 3)

    def test_run_streaming_bounds_inflight_pull(self):
        """The stream must not be drained ahead of the workers."""
        pulled = []

        def stream():
            for i in range(10):
                pulled.append(i)
                yield i, i

        # Serial: each item is processed before the next is pulled.
        seen_at_pull = []
        def fn(k, v):
            seen_at_pull.append(len(pulled))
            return v

        run_streaming(stream(), fn, 1)
        assert seen_at_pull == [i + 1 for i in range(10)]

    def _explain_json(self, mini_db, mini_schema_graph, **overrides):
        config = CajadeConfig(
            max_join_edges=2,
            top_k=5,
            f1_sample_rate=0.5,
            num_selected_attrs=4,
            seed=1,
            **overrides,
        )
        result = CajadeExplainer(mini_db, mini_schema_graph, config).explain(
            GSW_WINS_SQL, QUESTION
        )
        payload = json.loads(result.to_json())
        payload.pop("apt_cache", None)
        return json.dumps(payload, sort_keys=True)

    def test_workers_preserve_results(self, mini_db, mini_schema_graph):
        serial = self._explain_json(mini_db, mini_schema_graph, workers=1)
        parallel = self._explain_json(mini_db, mini_schema_graph, workers=3)
        assert serial == parallel

    def test_cache_preserves_results(self, mini_db, mini_schema_graph):
        on = self._explain_json(mini_db, mini_schema_graph, apt_cache_mb=64.0)
        off = self._explain_json(mini_db, mini_schema_graph, apt_cache_mb=0.0)
        assert on == off

    def test_join_memo_preserves_results(self, mini_db, mini_schema_graph):
        memo = self._explain_json(
            mini_db, mini_schema_graph, join_memo_entries=64
        )
        plain = self._explain_json(mini_db, mini_schema_graph)
        assert memo == plain

    def test_explain_reports_engine_stats(self, mini_db, mini_schema_graph):
        config = CajadeConfig(
            max_join_edges=1, f1_sample_rate=1.0, num_selected_attrs=3
        )
        result = CajadeExplainer(mini_db, mini_schema_graph, config).explain(
            GSW_WINS_SQL, QUESTION
        )
        assert result.engine is not None
        assert result.engine.graphs > 0
        payload = json.loads(result.to_json())
        assert "apt_cache" in payload
