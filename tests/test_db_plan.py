"""Tests for EXPLAIN-style query plans."""

import pytest

from repro.db.plan import explain_plan
from tests.conftest import GSW_WINS_SQL


class TestExplainPlan:
    def test_single_table_plan(self, mini_db):
        plan = explain_plan(GSW_WINS_SQL, mini_db)
        text = plan.render()
        assert "scan game AS g" in text
        assert "group by" in text
        assert plan.estimated_cost > 0

    def test_join_plan_has_join_steps(self, mini_db):
        sql = (
            "SELECT player_name, COUNT(*) AS n "
            "FROM player p, player_game pg "
            "WHERE p.player_id = pg.player_id GROUP BY player_name"
        )
        plan = explain_plan(sql, mini_db)
        descriptions = [s.description for s in plan.steps]
        assert any(d.startswith("hash join") for d in descriptions)
        assert sum(1 for d in descriptions if d.startswith("scan")) == 2

    def test_join_cardinality_estimate_reasonable(self, mini_db):
        sql = (
            "SELECT season, COUNT(*) AS n FROM game g, player_game pg "
            "WHERE g.year = pg.year AND g.gameno = pg.gameno "
            "GROUP BY season"
        )
        plan = explain_plan(sql, mini_db)
        join_steps = [
            s for s in plan.steps if s.description.startswith("hash join")
        ]
        assert join_steps
        actual = mini_db.sql(
            "SELECT COUNT(*) AS n FROM game g, player_game pg "
            "WHERE g.year = pg.year AND g.gameno = pg.gameno"
        ).to_dicts()[0]["n"]
        estimate = join_steps[-1].estimated_rows
        # Within an order of magnitude of the true join size.
        assert actual / 10 <= estimate <= actual * 10

    def test_filter_reduces_scan_estimate(self, mini_db):
        unfiltered = explain_plan(
            "SELECT season, COUNT(*) AS n FROM game GROUP BY season", mini_db
        )
        filtered = explain_plan(GSW_WINS_SQL, mini_db)
        scan_unfiltered = unfiltered.steps[0].estimated_rows
        scan_filtered = filtered.steps[0].estimated_rows
        assert scan_filtered < scan_unfiltered

    def test_cross_product_plan(self, mini_db):
        plan = explain_plan(
            "SELECT COUNT(*) AS n FROM game g, player p", mini_db
        )
        assert any(
            "cross product" in s.description for s in plan.steps
        )

    def test_cost_is_sum_of_steps(self, mini_db):
        plan = explain_plan(GSW_WINS_SQL, mini_db)
        assert plan.estimated_cost == pytest.approx(
            sum(s.estimated_rows for s in plan.steps)
        )
