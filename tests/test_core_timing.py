"""Unit tests for StepTimer."""

import time

import pytest

from repro.core.timing import (
    ALL_COUNTERS,
    ALL_STEPS,
    APT_CACHE_ENTRIES,
    APT_CACHE_EVICTIONS,
    APT_CACHE_HITS,
    APT_CACHE_MEDIAN_ENTRY_BYTES,
    APT_CACHE_MISSES,
    F_SCORE_CALC,
    StepTimer,
)


class TestStepTimer:
    def test_accumulates(self):
        timer = StepTimer()
        with timer.step(F_SCORE_CALC):
            time.sleep(0.01)
        with timer.step(F_SCORE_CALC):
            time.sleep(0.01)
        assert timer.seconds(F_SCORE_CALC) >= 0.02

    def test_unknown_step_zero(self):
        assert StepTimer().seconds("nope") == 0.0

    def test_add_manual(self):
        timer = StepTimer()
        timer.add("custom", 1.5)
        timer.add("custom", 0.5)
        assert timer.seconds("custom") == 2.0

    def test_total(self):
        timer = StepTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total == 3.0

    def test_breakdown_canonical_order(self):
        timer = StepTimer()
        timer.add(ALL_STEPS[3], 1.0)
        timer.add(ALL_STEPS[0], 1.0)
        timer.add("extra", 1.0)
        keys = list(timer.breakdown())
        assert keys == [ALL_STEPS[0], ALL_STEPS[3], "extra"]

    def test_merge(self):
        a, b = StepTimer(), StepTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.seconds("x") == 3.0
        assert a.seconds("y") == 3.0

    def test_format_table_has_total(self):
        timer = StepTimer()
        timer.add("a", 1.0)
        text = timer.format_table()
        assert "total" in text
        assert "a" in text

    def test_exception_still_recorded(self):
        timer = StepTimer()
        try:
            with timer.step("risky"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.seconds("risky") >= 0.0
        assert "risky" in timer.breakdown()


class TestCounters:
    def test_accumulates(self):
        timer = StepTimer()
        timer.count(APT_CACHE_HITS, 3)
        timer.count(APT_CACHE_HITS, 2)
        timer.count(APT_CACHE_MISSES)
        assert timer.counter(APT_CACHE_HITS) == 5
        assert timer.counter(APT_CACHE_MISSES) == 1

    def test_unknown_counter_zero(self):
        assert StepTimer().counter("nope") == 0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            StepTimer().count(APT_CACHE_HITS, -1)

    def test_canonical_order_first(self):
        timer = StepTimer()
        timer.count("custom", 1)
        timer.count(APT_CACHE_EVICTIONS, 1)
        timer.count(APT_CACHE_HITS, 1)
        keys = list(timer.counters())
        assert keys == [APT_CACHE_HITS, APT_CACHE_EVICTIONS, "custom"]
        assert set(ALL_COUNTERS) >= {APT_CACHE_HITS, APT_CACHE_EVICTIONS}

    def test_merge_includes_counters(self):
        a, b = StepTimer(), StepTimer()
        a.count(APT_CACHE_HITS, 1)
        b.count(APT_CACHE_HITS, 4)
        b.count(APT_CACHE_MISSES, 2)
        a.merge(b)
        assert a.counter(APT_CACHE_HITS) == 5
        assert a.counter(APT_CACHE_MISSES) == 2

    def test_format_table_shows_counters(self):
        timer = StepTimer()
        timer.add("a", 1.0)
        timer.count(APT_CACHE_HITS, 7)
        text = timer.format_table()
        assert APT_CACHE_HITS in text
        assert "7" in text

    def test_explain_populates_cache_counters(self, mini_db, mini_schema_graph):
        from repro import CajadeConfig, CajadeExplainer, ComparisonQuestion
        from tests.conftest import GSW_WINS_SQL

        config = CajadeConfig(
            max_join_edges=2, f1_sample_rate=1.0, num_selected_attrs=3
        )
        timer = StepTimer()
        CajadeExplainer(mini_db, mini_schema_graph, config).explain(
            GSW_WINS_SQL,
            ComparisonQuestion({"season": "2015-16"}, {"season": "2012-13"}),
            timer=timer,
        )
        assert timer.counter(APT_CACHE_MISSES) > 0
        assert APT_CACHE_MISSES in timer.counters()

    def test_gauges_overwrite_instead_of_accumulating(self):
        timer = StepTimer()
        timer.set_gauge(APT_CACHE_ENTRIES, 10)
        timer.set_gauge(APT_CACHE_ENTRIES, 7)
        assert timer.counter(APT_CACHE_ENTRIES) == 7
        other = StepTimer()
        other.set_gauge(APT_CACHE_ENTRIES, 3)
        timer.merge(other)
        assert timer.counter(APT_CACHE_ENTRIES) == 3
        assert APT_CACHE_ENTRIES in timer.counters()

    def test_batch_shared_timer_reports_latest_gauge(
        self, mini_db, mini_schema_graph
    ):
        """One timer across several requests must report the trie's
        latest entry count, not the sum over requests."""
        from repro import CajadeConfig, ComparisonQuestion
        from repro.api import CajadeSession
        from tests.conftest import GSW_WINS_SQL

        question = ComparisonQuestion(
            {"season": "2015-16"}, {"season": "2012-13"}
        )
        config = CajadeConfig(
            max_join_edges=2, f1_sample_rate=1.0, num_selected_attrs=3
        )
        session = CajadeSession(mini_db, mini_schema_graph, config)
        timer = StepTimer()
        session.explain(GSW_WINS_SQL, question, timer=timer)
        first = timer.counter(APT_CACHE_ENTRIES)
        session.explain(GSW_WINS_SQL, question, timer=timer)
        stats = session.engine_stats(GSW_WINS_SQL)
        assert stats is not None and stats.cache is not None
        assert timer.counter(APT_CACHE_ENTRIES) == stats.cache.entries
        assert timer.counter(APT_CACHE_ENTRIES) <= max(
            first, stats.cache.entries
        )

    def test_explain_populates_trie_entry_gauges(
        self, mini_db, mini_schema_graph
    ):
        """The session surfaces the trie's live entry count and median
        entry size as end-of-request StepTimer gauges, and late
        materialization shrinks the median entry at the same budget."""
        from repro import CajadeConfig, ComparisonQuestion
        from repro.api import CajadeSession
        from tests.conftest import GSW_WINS_SQL

        question = ComparisonQuestion(
            {"season": "2015-16"}, {"season": "2012-13"}
        )
        medians = {}
        for late in (True, False):
            config = CajadeConfig(
                max_join_edges=2,
                f1_sample_rate=1.0,
                num_selected_attrs=3,
                late_materialization=late,
            )
            timer = StepTimer()
            CajadeSession(mini_db, mini_schema_graph, config).explain(
                GSW_WINS_SQL, question, timer=timer
            )
            assert timer.counter(APT_CACHE_ENTRIES) > 0
            assert timer.counter(APT_CACHE_MEDIAN_ENTRY_BYTES) > 0
            text = timer.format_table()
            assert APT_CACHE_ENTRIES in text
            assert APT_CACHE_MEDIAN_ENTRY_BYTES in text
            medians[late] = timer.counter(APT_CACHE_MEDIAN_ENTRY_BYTES)
        assert medians[True] < medians[False]
