"""Unit tests for StepTimer."""

import time

from repro.core.timing import ALL_STEPS, F_SCORE_CALC, StepTimer


class TestStepTimer:
    def test_accumulates(self):
        timer = StepTimer()
        with timer.step(F_SCORE_CALC):
            time.sleep(0.01)
        with timer.step(F_SCORE_CALC):
            time.sleep(0.01)
        assert timer.seconds(F_SCORE_CALC) >= 0.02

    def test_unknown_step_zero(self):
        assert StepTimer().seconds("nope") == 0.0

    def test_add_manual(self):
        timer = StepTimer()
        timer.add("custom", 1.5)
        timer.add("custom", 0.5)
        assert timer.seconds("custom") == 2.0

    def test_total(self):
        timer = StepTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total == 3.0

    def test_breakdown_canonical_order(self):
        timer = StepTimer()
        timer.add(ALL_STEPS[3], 1.0)
        timer.add(ALL_STEPS[0], 1.0)
        timer.add("extra", 1.0)
        keys = list(timer.breakdown())
        assert keys == [ALL_STEPS[0], ALL_STEPS[3], "extra"]

    def test_merge(self):
        a, b = StepTimer(), StepTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.seconds("x") == 3.0
        assert a.seconds("y") == 3.0

    def test_format_table_has_total(self):
        timer = StepTimer()
        timer.add("a", 1.0)
        text = timer.format_table()
        assert "total" in text
        assert "a" in text

    def test_exception_still_recorded(self):
        timer = StepTimer()
        try:
            with timer.step("risky"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.seconds("risky") >= 0.0
        assert "risky" in timer.breakdown()
