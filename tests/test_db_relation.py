"""Unit tests for repro.db.relation."""

import numpy as np
import pytest

from repro.db import ColumnType, IntegrityError, Relation, SchemaError, TableSchema


def make_relation() -> Relation:
    schema = TableSchema.build(
        "t",
        {"id": ColumnType.INT, "name": ColumnType.TEXT, "score": ColumnType.FLOAT},
        primary_key=("id",),
    )
    rows = [(1, "a", 1.5), (2, "b", 2.5), (3, "a", None), (4, None, 4.0)]
    return Relation.from_rows(schema, rows)


class TestConstruction:
    def test_from_rows_shape(self):
        rel = make_relation()
        assert rel.num_rows == 4
        assert len(rel) == 4
        assert rel.column_names == ["id", "name", "score"]

    def test_row_width_checked(self):
        schema = TableSchema.build("t", {"a": ColumnType.INT})
        with pytest.raises(SchemaError):
            Relation.from_rows(schema, [(1, 2)])

    def test_pk_uniqueness_enforced(self):
        schema = TableSchema.build(
            "t", {"id": ColumnType.INT}, primary_key=("id",)
        )
        with pytest.raises(IntegrityError):
            Relation.from_rows(schema, [(1,), (1,)])

    def test_null_int_column_promoted_to_float(self):
        schema = TableSchema.build("t", {"a": ColumnType.INT})
        rel = Relation.from_rows(schema, [(1,), (None,)])
        assert rel.column("a").dtype == np.float64
        assert np.isnan(rel.column("a")[1])

    def test_from_dicts_infers_types(self):
        rel = Relation.from_dicts(
            "t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        )
        assert rel.column_type("a") == ColumnType.INT
        assert rel.column_type("b") == ColumnType.TEXT

    def test_from_dicts_empty_raises(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts("t", [])

    def test_empty_relation(self):
        schema = TableSchema.build("t", {"a": ColumnType.INT})
        rel = Relation.empty(schema)
        assert rel.num_rows == 0

    def test_ragged_columns_rejected(self):
        schema = TableSchema.build(
            "t", {"a": ColumnType.INT, "b": ColumnType.INT}
        )
        with pytest.raises(SchemaError):
            Relation(
                schema,
                {
                    "a": np.array([1, 2], dtype=np.int64),
                    "b": np.array([1], dtype=np.int64),
                },
            )


class TestAccess:
    def test_row_roundtrip(self):
        rel = make_relation()
        assert rel.row(0) == (1, "a", 1.5)

    def test_iter_rows_count(self):
        assert len(list(make_relation().iter_rows())) == 4

    def test_to_dicts(self):
        d = make_relation().to_dicts()[1]
        assert d == {"id": 2, "name": "b", "score": 2.5}

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_relation().column("nope")


class TestOperations:
    def test_take_preserves_order_and_duplicates(self):
        rel = make_relation()
        taken = rel.take(np.array([2, 0, 0]))
        assert [r[0] for r in taken.iter_rows()] == [3, 1, 1]

    def test_filter_mask(self):
        rel = make_relation()
        mask = rel.column("id").astype(np.int64) % 2 == 0
        assert [r[0] for r in rel.filter_mask(mask).iter_rows()] == [2, 4]

    def test_filter_mask_validates(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.filter_mask(np.array([True]))

    def test_project(self):
        projected = make_relation().project(["name"])
        assert projected.column_names == ["name"]
        assert projected.num_rows == 4

    def test_rename_columns(self):
        renamed = make_relation().rename_columns({"id": "ident"})
        assert "ident" in renamed.column_names
        assert renamed.schema.primary_key == ("ident",)

    def test_prefix_columns(self):
        prefixed = make_relation().prefix_columns("g.")
        assert prefixed.column_names == ["g.id", "g.name", "g.score"]

    def test_with_column(self):
        rel = make_relation()
        extended = rel.with_column(
            "extra", ColumnType.INT, np.arange(4, dtype=np.int64)
        )
        assert extended.column("extra")[3] == 3
        assert rel.num_rows == extended.num_rows

    def test_with_column_length_checked(self):
        with pytest.raises(SchemaError):
            make_relation().with_column(
                "extra", ColumnType.INT, np.arange(2, dtype=np.int64)
            )

    def test_concat(self):
        rel = make_relation()
        both = rel.concat(rel)
        assert both.num_rows == 8

    def test_concat_requires_same_columns(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.concat(rel.project(["id"]))

    def test_distinct(self):
        schema = TableSchema.build("t", {"a": ColumnType.INT})
        rel = Relation.from_rows(schema, [(1,), (2,), (1,), (3,), (2,)])
        assert [r[0] for r in rel.distinct().iter_rows()] == [1, 2, 3]

    def test_sort_by(self):
        schema = TableSchema.build(
            "t", {"a": ColumnType.INT, "b": ColumnType.TEXT}
        )
        rel = Relation.from_rows(schema, [(2, "x"), (1, "y"), (2, "a")])
        ordered = rel.sort_by(["a", "b"])
        assert list(ordered.iter_rows()) == [(1, "y"), (2, "a"), (2, "x")]

    def test_sample_fraction(self, rng):
        rel = make_relation()
        sampled = rel.sample(0.5, rng)
        assert sampled.num_rows == 2

    def test_sample_cap(self, rng):
        rel = make_relation()
        sampled = rel.sample(1.0, rng, max_rows=2)
        # fraction 1.0 returns self unless capped below size
        assert sampled.num_rows == 2

    def test_sample_full_returns_self(self, rng):
        rel = make_relation()
        assert rel.sample(1.0, rng) is rel

    def test_sample_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            make_relation().sample(0.0, rng)
